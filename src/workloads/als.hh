/**
 * @file
 * Alternating Least Squares via SGD (paper Sec. IV-C).
 *
 * Matrix factorization for recommenders: R ~= X Y^T with rank-k
 * factors. Following the paper, each iteration fixes one side and
 * updates the other by stochastic gradient descent over the known
 * ratings: even iterations update user factors (partitioned across
 * GPUs by user), odd iterations update item factors (partitioned by
 * item). The updated factor matrix is the PROACT region each
 * iteration. Factor rows are updated in rating order, so remote
 * stores coalesce poorly — this is the workload where the paper
 * measures 26x more inline store transactions than decoupled
 * transfers (Sec. V-B).
 */

#ifndef PROACT_WORKLOADS_ALS_HH
#define PROACT_WORKLOADS_ALS_HH

#include "workloads/workload.hh"

#include <cstdint>
#include <vector>

namespace proact {

/** SGD-based alternating matrix factorization. */
class AlsWorkload : public Workload
{
  public:
    struct Params
    {
        std::int64_t numUsers = 1 << 16;
        std::int64_t numItems = 1 << 16;
        std::int64_t numRatings = 1 << 21;
        int rank = 8;
        double learningRate = 0.05;
        double regularization = 0.02;
        int iterations = 8;
        int rowsPerCta = 128;
        std::uint64_t seed = 1234;
    };

    AlsWorkload() : AlsWorkload(Params{}) {}
    explicit AlsWorkload(Params params) : _params(params) {}

    std::string name() const override { return "ALS"; }
    void setup(int num_gpus) override;
    int numIterations() const override { return _params.iterations; }
    Phase buildPhase(int iter) override;

    TrafficProfile
    traffic() const override
    {
        // Factor-row elements update in rating order: poor wire
        // coalescing (the paper's 26x store-transaction blowup).
        return TrafficProfile{8, false};
    }

    bool verify() const override;

    /** Root-mean-square error over the known ratings. */
    double rmse() const;

  private:
    Params _params;

    /** Ratings in user-major CSR and item-major CSC. */
    std::vector<std::int64_t> _userOffsets;
    std::vector<std::int32_t> _userItems;
    std::vector<float> _userRatings;
    std::vector<std::int64_t> _itemOffsets;
    std::vector<std::int32_t> _itemUsers;
    std::vector<float> _itemRatings;

    std::vector<float> _userFactors; ///< numUsers x rank.
    std::vector<float> _itemFactors; ///< numItems x rank.

    std::vector<std::int64_t> _userBounds;
    std::vector<std::int64_t> _itemBounds;

    /** Rating-balanced CTA boundaries per GPU, per side. */
    std::vector<std::vector<std::int64_t>> _userCtaBounds;
    std::vector<std::vector<std::int64_t>> _itemCtaBounds;

    double _initialRmse = 0.0;

    void updateUserCta(int gpu, int cta);
    void updateItemCta(int gpu, int cta);
    CtaWork ctaFootprint(bool user_side, int gpu, int cta) const;
    std::pair<std::int64_t, std::int64_t>
    ctaRows(bool user_side, int gpu, int cta) const;
    std::int64_t ratingsInRows(bool user_side, std::int64_t lo,
                               std::int64_t hi) const;
};

} // namespace proact

#endif // PROACT_WORKLOADS_ALS_HH
