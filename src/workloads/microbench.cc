#include "workloads/microbench.hh"

#include "interconnect/packet_model.hh"
#include "sim/logging.hh"

#include <algorithm>
#include <cmath>

namespace proact {

MicrobenchWorkload::MicrobenchWorkload(PlatformSpec platform)
    : MicrobenchWorkload(std::move(platform), Params{})
{
}

MicrobenchWorkload::MicrobenchWorkload(PlatformSpec platform,
                                       Params params)
    : _platform(std::move(platform)), _params(params)
{
    if (_params.bytesPerCta == 0 ||
        _params.totalBytes < _params.bytesPerCta) {
        fatalError("MicrobenchWorkload: bad data shape");
    }
}

void
MicrobenchWorkload::setup(int num_gpus)
{
    if (num_gpus < 1)
        fatalError("MicrobenchWorkload: need at least one GPU");
    _numGpus = num_gpus;

    _numCtas =
        static_cast<int>(_params.totalBytes / _params.bytesPerCta);
    _data.assign(_params.totalBytes / 8, 0.0);

    // Analytic cudaMemcpy duplication time on the *platform's* GPU
    // count (tuning is a property of the machine, not of this run's
    // GPU count, so single-GPU baselines use the same kernel).
    const int peers = std::max(1, _platform.numGpus - 1);
    const PacketModel packet =
        packetModelFor(_platform.fabric.protocol);
    const std::uint64_t wire = packet.wireBytes(
        _params.totalBytes, packet.maxPayloadBytes);
    _targetTransfer = _platform.gpu.dmaInitLatency
        + transferTicks(wire * peers, _platform.fabric.egressRate());

    // Tune per-CTA local traffic so the memory-bound source kernel
    // runs for ~the transfer time: total kernel time ~= numCtas * L /
    // memBw under the wave occupancy model.
    const double seconds = secondsFromTicks(_targetTransfer);
    _ctaLocalBytes = static_cast<std::uint64_t>(
        seconds * _platform.gpu.memBandwidth
        / static_cast<double>(_numCtas));
    _ctaLocalBytes = std::max<std::uint64_t>(
        _ctaLocalBytes, _params.bytesPerCta);
}

void
MicrobenchWorkload::computeCta(int cta, int iter)
{
    const std::uint64_t doubles_per_cta = _params.bytesPerCta / 8;
    const std::uint64_t lo =
        static_cast<std::uint64_t>(cta) * doubles_per_cta;
    for (std::uint64_t i = 0; i < doubles_per_cta; ++i) {
        _data[lo + i] = static_cast<double>(iter + 1)
            * static_cast<double>(lo + i + _params.seed);
    }
}

Phase
MicrobenchWorkload::buildPhase(int iter)
{
    _itersRun = std::max(_itersRun, iter + 1);

    Phase p;
    p.perGpu.resize(_numGpus);

    // Source GPU 0 produces everything.
    GpuPhaseWork &src = p.perGpu[0];
    src.kernel.name = "microbench_producer";
    src.kernel.numCtas = _numCtas;
    const std::uint64_t local = _ctaLocalBytes;
    src.kernel.body = [this, iter, local](const CtaContext &ctx) {
        if (ctx.functional)
            computeCta(ctx.ctaId, iter);
        CtaWork work;
        work.flops = 0.0;
        work.localBytes = local;
        return work;
    };
    src.bytesProduced = _params.totalBytes;
    const std::uint64_t bytes_per_cta = _params.bytesPerCta;
    src.ctaRange = [bytes_per_cta](int cta) {
        const std::uint64_t lo =
            static_cast<std::uint64_t>(cta) * bytes_per_cta;
        return ByteRange{lo, lo + bytes_per_cta};
    };

    // Destination GPUs idle until the next phase.
    for (int g = 1; g < _numGpus; ++g) {
        GpuPhaseWork &dst = p.perGpu[g];
        dst.kernel.name = "microbench_consumer";
        dst.kernel.numCtas = 1;
        dst.kernel.body = [](const CtaContext &) {
            CtaWork work;
            work.localBytes = 4 * KiB;
            return work;
        };
        dst.bytesProduced = 0;
    }
    return p;
}

bool
MicrobenchWorkload::verify() const
{
    // After a full functional run, every element holds the final
    // iteration's pattern.
    const double factor = static_cast<double>(_params.iterations);
    const std::uint64_t n = _data.size();
    const std::uint64_t stride = std::max<std::uint64_t>(1, n / 4096);
    for (std::uint64_t i = 0; i < n; i += stride) {
        const double expect =
            factor * static_cast<double>(i + _params.seed);
        if (_data[i] != expect)
            return false;
    }
    return true;
}

} // namespace proact
