#include "workloads/mbir.hh"

#include "sim/logging.hh"
#include "sim/random.hh"

#include <algorithm>
#include <cmath>

namespace proact {

void
MbirWorkload::setup(int num_gpus)
{
    if (num_gpus < 1)
        fatalError("MbirWorkload: need at least one GPU");
    _numGpus = num_gpus;

    const std::int64_t n = _params.numPixels;
    const int hb = _params.halfBand;
    const int bw = bandWidth();

    // Normalized Gaussian projection footprint: row sums of A are 1,
    // so ||A||_2 <= 1 and Landweber converges for alpha in (0, 2).
    _weights.resize(bw);
    double wsum = 0.0;
    for (int k = 0; k < bw; ++k) {
        const double d = k - hb;
        _weights[k] = std::exp(-d * d / (2.0 * hb * hb / 4.0 + 1.0));
        wsum += _weights[k];
    }
    for (auto &w : _weights)
        w /= wsum;

    // Piecewise-smooth ground-truth image.
    Rng rng(_params.seed);
    _truth.assign(n, 0.0);
    double level = rng.uniform();
    for (std::int64_t i = 0; i < n; ++i) {
        if (rng.below(4096) == 0)
            level = rng.uniform();
        _truth[i] = level;
    }

    _sino.resize(n);
    for (std::int64_t j = 0; j < n; ++j)
        _sino[j] = project(_truth, j);

    _xOld.assign(n, 0.0);
    _xNew.assign(n, 0.0);

    _bounds.resize(num_gpus + 1);
    for (int p = 0; p <= num_gpus; ++p)
        _bounds[p] = n * p / num_gpus;

    _initialError = reconstructionError();
}

double
MbirWorkload::project(const std::vector<double> &img,
                      std::int64_t j) const
{
    const int hb = _params.halfBand;
    const std::int64_t n = _params.numPixels;
    double acc = 0.0;
    for (int k = 0; k < bandWidth(); ++k) {
        const std::int64_t i = j + k - hb;
        if (i < 0 || i >= n)
            continue;
        acc += _weights[k] * img[i];
    }
    return acc;
}

void
MbirWorkload::computeCta(int gpu, int cta)
{
    const std::int64_t lo = _bounds[gpu]
        + static_cast<std::int64_t>(cta) * _params.pixelsPerCta;
    const std::int64_t hi =
        std::min<std::int64_t>(lo + _params.pixelsPerCta,
                               _bounds[gpu + 1]);
    const int hb = _params.halfBand;
    const std::int64_t n = _params.numPixels;

    // Residuals needed by pixels [lo, hi): r_j for j in
    // [lo - hb, hi + hb).
    const std::int64_t rlo = std::max<std::int64_t>(0, lo - hb);
    const std::int64_t rhi = std::min<std::int64_t>(n, hi + hb);
    std::vector<double> residual(rhi - rlo);
    for (std::int64_t j = rlo; j < rhi; ++j)
        residual[j - rlo] = _sino[j] - project(_xOld, j);

    // Back-project: x_new[i] = x[i] + alpha * sum_j a_ji r_j.
    for (std::int64_t i = lo; i < hi; ++i) {
        double acc = 0.0;
        for (int k = 0; k < bandWidth(); ++k) {
            const std::int64_t j = i + hb - k;
            if (j < rlo || j >= rhi)
                continue;
            acc += _weights[k] * residual[j - rlo];
        }
        _xNew[i] = _xOld[i] + _params.stepSize * acc;
    }
}

CtaWork
MbirWorkload::ctaFootprint(int gpu, int cta) const
{
    const std::int64_t lo = _bounds[gpu]
        + static_cast<std::int64_t>(cta) * _params.pixelsPerCta;
    const std::int64_t hi =
        std::min<std::int64_t>(lo + _params.pixelsPerCta,
                               _bounds[gpu + 1]);
    const auto pixels = static_cast<double>(std::max<std::int64_t>(
        0, hi - lo));
    const double bw = bandWidth();

    CtaWork work;
    // Forward + back projection, ~2*bw MACs each per pixel.
    work.flops = pixels * 4.0 * bw;
    // x window + sinogram window reads + image store.
    work.localBytes =
        static_cast<std::uint64_t>(pixels * (2.0 * bw * 8.0 + 24.0));
    return work;
}

Phase
MbirWorkload::buildPhase(int iter)
{
    Phase p;
    p.perGpu.resize(_numGpus);

    if (iter > 0)
        std::swap(_xOld, _xNew);

    for (int g = 0; g < _numGpus; ++g) {
        const std::int64_t pixels = _bounds[g + 1] - _bounds[g];
        const int num_ctas = static_cast<int>(std::max<std::int64_t>(
            1, (pixels + _params.pixelsPerCta - 1)
                   / _params.pixelsPerCta));

        GpuPhaseWork &work = p.perGpu[g];
        work.kernel.name = "mbir_landweber";
        work.kernel.numCtas = num_ctas;
        work.kernel.body = [this, g](const CtaContext &ctx) {
            if (ctx.functional)
                computeCta(g, ctx.ctaId);
            return ctaFootprint(g, ctx.ctaId);
        };
        work.bytesProduced = static_cast<std::uint64_t>(pixels) * 8;

        const std::int64_t per_cta = _params.pixelsPerCta;
        work.ctaRange = [pixels, per_cta](int cta) {
            const std::uint64_t lo = static_cast<std::uint64_t>(cta)
                * per_cta * 8;
            const std::uint64_t hi = std::min<std::uint64_t>(
                static_cast<std::uint64_t>(pixels) * 8,
                lo + per_cta * 8);
            return ByteRange{lo, std::max(lo, hi)};
        };
    }
    return p;
}

double
MbirWorkload::relativeResidual() const
{
    double res2 = 0.0, y2 = 0.0;
    for (std::int64_t j = 0; j < _params.numPixels; ++j) {
        const double r = _sino[j] - project(_xNew, j);
        res2 += r * r;
        y2 += _sino[j] * _sino[j];
    }
    return y2 > 0.0 ? std::sqrt(res2 / y2) : 0.0;
}

double
MbirWorkload::reconstructionError() const
{
    double e2 = 0.0, t2 = 0.0;
    for (std::int64_t i = 0; i < _params.numPixels; ++i) {
        const double e = _xNew[i] - _truth[i];
        e2 += e * e;
        t2 += _truth[i] * _truth[i];
    }
    return t2 > 0.0 ? std::sqrt(e2 / t2) : 0.0;
}

bool
MbirWorkload::verify() const
{
    const double err = reconstructionError();
    const double res = relativeResidual();
    return std::isfinite(err) && std::isfinite(res)
        && err < _initialError && res < 0.5;
}

} // namespace proact
