#include "workloads/graph.hh"

#include "sim/logging.hh"

#include <algorithm>
#include <bit>

namespace proact {

namespace {

/** Sample one R-MAT edge by recursive quadrant descent. */
std::pair<std::int64_t, std::int64_t>
sampleEdge(Rng &rng, int scale, double a, double b, double c)
{
    std::int64_t src = 0, dst = 0;
    for (int level = 0; level < scale; ++level) {
        const double r = rng.uniform();
        src <<= 1;
        dst <<= 1;
        if (r < a) {
            // top-left: neither bit set
        } else if (r < a + b) {
            dst |= 1;
        } else if (r < a + b + c) {
            src |= 1;
        } else {
            src |= 1;
            dst |= 1;
        }
    }
    return {src, dst};
}

Graph
buildCsr(std::int64_t num_vertices,
         std::vector<std::pair<std::int64_t, std::int64_t>> &edges,
         Rng &rng, std::int32_t max_weight)
{
    Graph g;
    g.numVertices = num_vertices;
    g.outDegree.assign(num_vertices, 0);
    g.inOffsets.assign(num_vertices + 1, 0);

    for (const auto &[src, dst] : edges) {
        ++g.outDegree[src];
        ++g.inOffsets[dst + 1];
    }
    for (std::int64_t v = 0; v < num_vertices; ++v)
        g.inOffsets[v + 1] += g.inOffsets[v];

    g.inNeighbors.resize(edges.size());
    g.inWeights.resize(edges.size());
    std::vector<std::int64_t> cursor(g.inOffsets.begin(),
                                     g.inOffsets.end() - 1);

    // Fill in deterministic edge order (generation order per dst).
    for (const auto &[src, dst] : edges) {
        const std::int64_t slot = cursor[dst]++;
        g.inNeighbors[slot] = static_cast<std::int32_t>(src);
        g.inWeights[slot] = static_cast<float>(
            1 + rng.below(static_cast<std::uint64_t>(max_weight)));
    }
    return g;
}

} // namespace

Graph
generateRmat(const RmatParams &params)
{
    if (params.numVertices <= 0 || params.numEdges <= 0)
        fatalError("generateRmat: empty graph requested");
    if (std::popcount(
            static_cast<std::uint64_t>(params.numVertices)) != 1) {
        fatalError("generateRmat: vertex count must be a power of 2, "
                   "got ", params.numVertices);
    }
    const double sum = params.a + params.b + params.c;
    if (sum >= 1.0)
        fatalError("generateRmat: quadrant probabilities exceed 1");

    const int scale = std::bit_width(
        static_cast<std::uint64_t>(params.numVertices)) - 1;

    Rng rng(params.seed);
    std::vector<std::pair<std::int64_t, std::int64_t>> edges;
    edges.reserve(params.numEdges);
    for (std::int64_t e = 0; e < params.numEdges; ++e)
        edges.push_back(
            sampleEdge(rng, scale, params.a, params.b, params.c));

    if (params.shuffleVertices) {
        // Fisher-Yates permutation of vertex labels.
        std::vector<std::int64_t> perm(params.numVertices);
        for (std::int64_t v = 0; v < params.numVertices; ++v)
            perm[v] = v;
        for (std::int64_t v = params.numVertices - 1; v > 0; --v) {
            const auto j = static_cast<std::int64_t>(
                rng.below(static_cast<std::uint64_t>(v + 1)));
            std::swap(perm[v], perm[j]);
        }
        for (auto &[src, dst] : edges) {
            src = perm[src];
            dst = perm[dst];
        }
    }

    return buildCsr(params.numVertices, edges, rng,
                    params.maxWeight);
}

Graph
generateRing(std::int64_t num_vertices, int degree)
{
    if (num_vertices <= 0 || degree <= 0 ||
        degree >= num_vertices) {
        fatalError("generateRing: invalid shape (", num_vertices,
                   " vertices, degree ", degree, ")");
    }

    std::vector<std::pair<std::int64_t, std::int64_t>> edges;
    edges.reserve(num_vertices * degree);
    for (std::int64_t v = 0; v < num_vertices; ++v) {
        for (int k = 1; k <= degree; ++k) {
            const std::int64_t src =
                (v - k + num_vertices) % num_vertices;
            edges.emplace_back(src, v);
        }
    }
    Rng rng(7);
    return buildCsr(num_vertices, edges, rng, 1);
}

std::vector<std::int64_t>
partitionByEdges(const Graph &graph, int num_parts)
{
    if (num_parts <= 0)
        fatalError("partitionByEdges: need at least one part");

    std::vector<std::int64_t> bounds(num_parts + 1, 0);
    const std::int64_t total = graph.numEdges();
    std::int64_t v = 0;
    for (int p = 1; p < num_parts; ++p) {
        const std::int64_t target = total * p / num_parts;
        while (v < graph.numVertices && graph.inOffsets[v] < target)
            ++v;
        bounds[p] = v;
    }
    bounds[num_parts] = graph.numVertices;

    // Guarantee monotone non-decreasing boundaries even for highly
    // skewed graphs (a part may be empty, which callers tolerate).
    for (int p = 1; p <= num_parts; ++p)
        bounds[p] = std::max(bounds[p], bounds[p - 1]);
    return bounds;
}

std::vector<std::int64_t>
balanceByWeight(const std::vector<std::int64_t> &offsets,
                std::int64_t lo, std::int64_t hi,
                std::int64_t target_weight, std::int64_t max_rows)
{
    if (lo < 0 || hi < lo ||
        hi >= static_cast<std::int64_t>(offsets.size())) {
        fatalError("balanceByWeight: bad row range [", lo, ", ", hi,
                   ")");
    }
    target_weight = std::max<std::int64_t>(1, target_weight);
    max_rows = std::max<std::int64_t>(1, max_rows);

    std::vector<std::int64_t> bounds{lo};
    std::int64_t row = lo;
    while (row < hi) {
        const std::int64_t weight_cap = offsets[row] + target_weight;
        std::int64_t next = row;
        while (next < hi && next - row < max_rows &&
               offsets[next + 1] <= weight_cap) {
            ++next;
        }
        // Always take at least one row so hubs heavier than the
        // target still make progress.
        if (next == row)
            ++next;
        bounds.push_back(next);
        row = next;
    }
    if (bounds.back() != hi || bounds.size() == 1)
        bounds.push_back(hi);
    return bounds;
}

} // namespace proact
