/**
 * @file
 * Workload registry: the paper's five applications at standard sizes.
 *
 * Benchmark harnesses create workloads by name; a scale shift lets
 * quick runs shrink every dimension by powers of two (set
 * PROACT_SCALE_SHIFT=1,2,... in the environment) without changing
 * any compute/communication *ratio* qualitatively.
 */

#ifndef PROACT_WORKLOADS_REGISTRY_HH
#define PROACT_WORKLOADS_REGISTRY_HH

#include "workloads/workload.hh"

#include <memory>
#include <string>
#include <vector>

namespace proact {

/** The paper's application set in Fig. 7 order. */
std::vector<std::string> standardWorkloadNames();

/**
 * Create a workload by name ("X-ray CT", "Jacobi", "Pagerank",
 * "SSSP", "ALS") at standard size scaled down by 2^scale_shift.
 * @throws FatalError for unknown names.
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       int scale_shift = 0);

/** Scale shift from PROACT_SCALE_SHIFT (0 when unset/invalid). */
int envScaleShift();

} // namespace proact

#endif // PROACT_WORKLOADS_REGISTRY_HH
