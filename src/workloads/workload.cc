#include "workloads/workload.hh"

#include "sim/logging.hh"

namespace proact {

void
Workload::setFootprintScale(std::uint64_t factor)
{
    if (factor == 0)
        fatalError("Workload: footprint scale must be non-zero");
    _footprintScale = factor;
}

Phase
Workload::phase(int iter)
{
    Phase p = buildPhase(iter);
    const std::uint64_t f = _footprintScale;
    if (f == 1)
        return p;

    for (GpuPhaseWork &work : p.perGpu) {
        work.bytesProduced *= f;

        CtaFn inner_body = std::move(work.kernel.body);
        work.kernel.body = [inner_body, f](const CtaContext &ctx) {
            CtaWork w = inner_body(ctx);
            w.flops *= static_cast<double>(f);
            w.localBytes *= f;
            return w;
        };

        auto scale_range =
            [f](std::function<ByteRange(int)> &range) {
                if (!range)
                    return;
                auto inner = std::move(range);
                range = [inner, f](int cta) {
                    ByteRange r = inner(cta);
                    return ByteRange{r.lo * f, r.hi * f};
                };
            };
        scale_range(work.ctaRange);
        for (RegionOutput &extra : work.extraOutputs) {
            extra.bytesProduced *= f;
            scale_range(extra.ctaRange);
        }
    }
    return p;
}

} // namespace proact
