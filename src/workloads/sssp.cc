#include "workloads/sssp.hh"

#include "sim/logging.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace proact {

namespace {
constexpr double inf = std::numeric_limits<double>::infinity();
} // namespace

void
SsspWorkload::setup(int num_gpus)
{
    if (num_gpus < 1)
        fatalError("SsspWorkload: need at least one GPU");
    _numGpus = num_gpus;

    _graph = generateRmat(_params.graph);
    if (_params.source < 0 || _params.source >= _graph.numVertices)
        fatalError("SsspWorkload: source vertex out of range");

    _distOld.assign(_graph.numVertices, inf);
    _distNew.assign(_graph.numVertices, inf);
    _distOld[_params.source] = 0.0;
    _distNew[_params.source] = 0.0;
    _bounds = partitionByEdges(_graph, num_gpus);

    _ctaBounds.resize(num_gpus);
    for (int g = 0; g < num_gpus; ++g) {
        const std::int64_t verts = _bounds[g + 1] - _bounds[g];
        const std::int64_t target_ctas = std::max<std::int64_t>(
            1, verts / _params.vertsPerCta);
        const std::int64_t edges =
            _graph.edgesInRange(_bounds[g], _bounds[g + 1]);
        _ctaBounds[g] = balanceByWeight(
            _graph.inOffsets, _bounds[g], _bounds[g + 1],
            std::max<std::int64_t>(1, edges / target_ctas),
            4 * _params.vertsPerCta);
    }
}

std::pair<std::int64_t, std::int64_t>
SsspWorkload::ctaVerts(int gpu, int cta) const
{
    return {_ctaBounds[gpu][cta], _ctaBounds[gpu][cta + 1]};
}

void
SsspWorkload::computeCta(int gpu, int cta)
{
    const auto [lo, hi] = ctaVerts(gpu, cta);
    for (std::int64_t v = lo; v < hi; ++v) {
        double best = _distOld[v];
        for (std::int64_t e = _graph.inOffsets[v];
             e < _graph.inOffsets[v + 1]; ++e) {
            const std::int32_t u = _graph.inNeighbors[e];
            const double cand =
                _distOld[u] + _graph.inWeights[e];
            best = std::min(best, cand);
        }
        _distNew[v] = best;
    }
}

CtaWork
SsspWorkload::ctaFootprint(int gpu, int cta) const
{
    const auto [lo, hi] = ctaVerts(gpu, cta);
    const auto verts = static_cast<double>(hi - lo);
    const auto edges =
        static_cast<double>(_graph.edgesInRange(lo, hi));

    CtaWork work;
    work.flops = 2.0 * edges;
    // Per edge: neighbor id (4B) + dist gather (8B) + weight (4B);
    // per vertex: offsets + old dist + new dist store.
    work.localBytes =
        static_cast<std::uint64_t>(edges * 16.0 + verts * 24.0);
    return work;
}

Phase
SsspWorkload::buildPhase(int iter)
{
    Phase p;
    p.perGpu.resize(_numGpus);

    if (iter > 0)
        std::swap(_distOld, _distNew);

    for (int g = 0; g < _numGpus; ++g) {
        const std::int64_t verts = _bounds[g + 1] - _bounds[g];
        const int num_ctas =
            static_cast<int>(_ctaBounds[g].size()) - 1;

        GpuPhaseWork &work = p.perGpu[g];
        work.kernel.name = "sssp_relax";
        work.kernel.numCtas = std::max(1, num_ctas);
        work.kernel.body = [this, g](const CtaContext &ctx) {
            if (ctx.functional)
                computeCta(g, ctx.ctaId);
            return ctaFootprint(g, ctx.ctaId);
        };
        work.bytesProduced = static_cast<std::uint64_t>(verts) * 8;

        const std::vector<std::int64_t> *cta_bounds = &_ctaBounds[g];
        const std::int64_t base = _bounds[g];
        work.ctaRange = [cta_bounds, base](int cta) {
            const std::uint64_t lo =
                ((*cta_bounds)[cta] - base) * 8;
            const std::uint64_t hi =
                ((*cta_bounds)[cta + 1] - base) * 8;
            return ByteRange{lo, hi};
        };
    }
    return p;
}

std::vector<double>
SsspWorkload::referenceDistances(int hops) const
{
    std::vector<double> dist(_graph.numVertices, inf);
    std::vector<double> next(_graph.numVertices, inf);
    dist[_params.source] = 0.0;
    for (int round = 0; round < hops; ++round) {
        for (std::int64_t v = 0; v < _graph.numVertices; ++v) {
            double best = dist[v];
            for (std::int64_t e = _graph.inOffsets[v];
                 e < _graph.inOffsets[v + 1]; ++e) {
                best = std::min(best, dist[_graph.inNeighbors[e]]
                                          + _graph.inWeights[e]);
            }
            next[v] = best;
        }
        dist.swap(next);
    }
    return dist;
}

bool
SsspWorkload::verify() const
{
    // The multi-GPU run performs exactly numIterations synchronous
    // relaxation rounds; the serial reference must agree bitwise.
    const std::vector<double> ref =
        referenceDistances(_params.iterations);
    if (ref.size() != _distNew.size())
        return false;
    for (std::size_t v = 0; v < ref.size(); ++v) {
        if (ref[v] != _distNew[v])
            return false;
    }
    return _distNew[_params.source] == 0.0;
}

} // namespace proact
