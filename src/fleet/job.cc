#include "fleet/job.hh"

#include "sim/logging.hh"
#include "sim/random.hh"
#include "workloads/registry.hh"

#include <cmath>
#include <sstream>

namespace proact::fleet {

std::string
JobSpec::describe() const
{
    std::ostringstream oss;
    oss << "job" << id << " " << workload << " x" << gpus << " prio"
        << priority << " @"
        << arrival / ticksPerMicrosecond << "us";
    if (deadline != 0)
        oss << " due " << deadline / ticksPerMicrosecond << "us";
    return oss.str();
}

std::vector<JobSpec>
generateJobStream(const ArrivalModel &model)
{
    if (model.numJobs < 1)
        fatalError("generateJobStream: numJobs must be positive");
    if (model.gpuCounts.empty())
        fatalError("generateJobStream: no candidate GPU counts");

    const std::vector<std::string> names = model.workloads.empty()
        ? standardWorkloadNames()
        : model.workloads;

    std::vector<JobSpec> jobs;
    jobs.reserve(static_cast<std::size_t>(model.numJobs));
    Tick clock = 0;
    for (int i = 0; i < model.numJobs; ++i) {
        Rng rng(deriveSeed(model.seed, static_cast<std::uint64_t>(i)));

        JobSpec job;
        job.id = i;
        job.seed = deriveSeed(model.seed,
                              0x10000u + static_cast<std::uint64_t>(i));
        job.workload = names[rng.below(names.size())];
        job.gpus = model.gpuCounts[rng.below(model.gpuCounts.size())];
        job.priority = static_cast<int>(
            rng.below(static_cast<std::uint64_t>(
                std::max(1, model.numPriorities))));

        // Exponential inter-arrival gap via inverse transform. The
        // draw order within the per-job stream is fixed (workload,
        // gpus, priority, gap, deadline coin) — reordering it would
        // silently invalidate every golden stream.
        const double u = rng.uniform();
        const double gap = -std::log(1.0 - u)
            * static_cast<double>(model.meanInterarrival);
        clock += static_cast<Tick>(gap);
        job.arrival = clock;

        if (rng.uniform() < model.deadlineFraction) {
            job.deadline = job.arrival
                + static_cast<Tick>(
                      model.deadlineSlack
                      * static_cast<double>(model.meanInterarrival));
        }
        jobs.push_back(std::move(job));
    }
    return jobs;
}

} // namespace proact::fleet
