/**
 * @file
 * GPU subset allocation for co-resident tenants on one fabric.
 *
 * The allocator carves the platform into placement planes — on a
 * DGX-2, the two 8-GPU baseboards whose traffic rides disjoint
 * NVSwitch port groups; on the 4-GPU platforms, the whole machine is
 * one plane; on multi-node platforms a plane never spans a node
 * boundary, so no tenant's intra-job traffic is forced across the
 * slower network tier. Disjoint mode gives every plane to at most one tenant
 * (full fabric isolation: a tenant's faults and congestion cannot
 * touch a neighbour). PlaneSharing packs up to maxTenantsPerPlane
 * tenants per plane; sharing tenants split the plane's per-GPU
 * bandwidth, which the fleet layer models by scaling each tenant's
 * fabric spec by its placement's shareCount.
 */

#ifndef PROACT_FLEET_PLACEMENT_HH
#define PROACT_FLEET_PLACEMENT_HH

#include "system/platform.hh"

#include <optional>
#include <utility>
#include <vector>

namespace proact::fleet {

/** How tenants may overlap on a placement plane. */
enum class PlacementMode
{
    Disjoint,     ///< One tenant per plane; full isolation.
    PlaneSharing, ///< Up to maxTenantsPerPlane tenants per plane.
};

/** GPUs granted to one admitted tenant. */
struct Placement
{
    /** Physical GPU ids, ascending. */
    std::vector<int> gpus;

    /** Planes the GPUs live on, ascending, deduplicated. */
    std::vector<int> planes;

    /**
     * Tenants (including this one) on the most crowded plane used,
     * fixed at admission: the divisor applied to the tenant's
     * per-GPU fabric bandwidth for its whole run.
     */
    int shareCount = 1;

    bool valid() const { return !gpus.empty(); }
};

/** First-fit, least-loaded-plane GPU allocator. */
class PlacementAllocator
{
  public:
    PlacementAllocator(const PlatformSpec &platform, PlacementMode mode,
                       int max_tenants_per_plane = 2);

    /**
     * Try to grant @p gpus GPUs inside a single plane, preferring the
     * least-loaded (fewest tenants, then lowest id) plane with room;
     * lowest-id free GPUs win. Deterministic for a given allocator
     * state.
     *
     * @return The placement, or nullopt when no plane has capacity.
     */
    std::optional<Placement> tryAllocate(int gpus);

    /** Return a placement's GPUs and tenant slots to the pool. */
    void release(const Placement &placement);

    /**
     * Permanently remove @p gpu from the pool: a LOST device must
     * never be granted again (releasing a placement that contains it
     * is fine — the slot stays unallocatable). Idempotent.
     */
    void quarantine(int gpu);

    /** Whether @p gpu is quarantined. */
    bool isQuarantined(int gpu) const;

    /** GPUs quarantined so far across every plane. */
    int quarantinedGpus() const;

    /**
     * Largest request any plane could ever satisfy once current
     * tenants drain (plane size minus its quarantined GPUs) — the
     * shrink target for a resumed job whose original GPU count no
     * longer fits anywhere.
     */
    int maxAllocatableGpus() const;

    int numPlanes() const
    {
        return static_cast<int>(_planes.size());
    }

    int gpusPerPlane() const { return _gpusPerPlane; }

    /** Tenants currently holding GPUs on @p plane. */
    int tenantsOnPlane(int plane) const;

    /** Free GPUs remaining on @p plane. */
    int freeGpusOnPlane(int plane) const;

    /**
     * Representative directed link of @p plane — its two lowest GPU
     * ids — on which the fleet layer books congestion observations
     * for the whole plane's port group.
     */
    std::pair<int, int> planeRepLink(int plane) const;

    PlacementMode mode() const { return _mode; }

  private:
    struct Plane
    {
        int firstGpu = 0;
        int tenants = 0;
        std::vector<bool> busy;        ///< Per-GPU occupancy.
        std::vector<bool> quarantined; ///< Permanently withdrawn.
    };

    PlacementMode _mode;
    int _maxTenantsPerPlane;
    int _gpusPerPlane;
    std::vector<Plane> _planes;
};

} // namespace proact::fleet

#endif // PROACT_FLEET_PLACEMENT_HH
