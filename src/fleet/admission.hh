/**
 * @file
 * Contention-aware admission control for the fleet layer.
 *
 * Pending jobs queue in a strict priority order (priority desc,
 * arrival asc, id asc). A job is admitted when the placement
 * allocator can seat it AND the seats are acceptable: co-locating
 * onto a plane whose representative link the LinkHealthMonitor
 * currently classifies CONGESTED is deferred until the backlog
 * clears — unless the fabric is otherwise idle, in which case
 * waiting would serve nobody and the job is force-admitted.
 */

#ifndef PROACT_FLEET_ADMISSION_HH
#define PROACT_FLEET_ADMISSION_HH

#include "fleet/job.hh"
#include "fleet/placement.hh"
#include "sim/stats.hh"

#include <functional>
#include <optional>
#include <vector>

namespace proact::fleet {

/** Admission knobs. */
struct AdmissionPolicy
{
    /** Defer co-location onto CONGESTED planes. */
    bool deferOnCongestion = true;
};

/** Orders the queue and decides who may start now. */
class AdmissionController
{
  public:
    /** Tells whether a plane's port group is currently congested. */
    using CongestionQuery = std::function<bool(int plane)>;

    explicit AdmissionController(AdmissionPolicy policy = {});

    /**
     * Admission order: priority desc, then arrival asc, then id asc.
     * Stable and total, so a fixed job stream admits identically on
     * every run.
     */
    static void sortQueue(std::vector<const JobSpec *> &queue);

    /**
     * Try to seat @p job. On success the allocation in @p allocator
     * is committed and returned; on capacity shortage or congestion
     * deferral the allocator is left untouched and nullopt returns.
     *
     * @param fabric_idle No tenant is running anywhere: deferral
     *        would deadlock, so congestion is overridden (counted in
     *        admission.forced).
     */
    std::optional<Placement> tryAdmit(
        const JobSpec &job, PlacementAllocator &allocator,
        const CongestionQuery &congested, bool fabric_idle);

    /**
     * Stats: admission.admitted, admission.deferred_capacity,
     * admission.deferred_congestion, admission.forced.
     */
    StatSet &stats() { return _stats; }
    const StatSet &stats() const { return _stats; }

  private:
    AdmissionPolicy _policy;
    StatSet _stats;
};

} // namespace proact::fleet

#endif // PROACT_FLEET_ADMISSION_HH
