#include "fleet/fleet_session.hh"

#include "sim/logging.hh"
#include "workloads/registry.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <queue>
#include <sstream>
#include <tuple>
#include <utility>

namespace proact::fleet {

HealthPolicy
fleetHealthPolicy()
{
    HealthPolicy policy;
    // The fleet fabric carries no payload, only booked observations:
    // there is nothing for a probe to traverse, and the fleet event
    // queue is never run.
    policy.probeInterval = 0;
    return policy;
}

Tick
FleetReport::percentile(std::vector<Tick> values, double p)
{
    if (values.empty())
        return 0;
    std::sort(values.begin(), values.end());
    // Nearest-rank: integer arithmetic on sorted ticks, so the same
    // sample set always yields the same byte-identical answer.
    const auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(values.size())));
    const std::size_t idx = rank == 0 ? 0 : rank - 1;
    return values[std::min(idx, values.size() - 1)];
}

std::map<std::string, std::vector<Tick>>
FleetReport::latenciesByWorkload() const
{
    std::map<std::string, std::vector<Tick>> classes;
    for (const TenantRecord &t : tenants)
        classes[t.job.workload].push_back(t.latency);
    return classes;
}

std::string
FleetReport::percentileTable() const
{
    std::ostringstream oss;
    oss << "class                 n     p50us     p95us     p99us\n";
    auto row = [&](const std::string &name,
                   const std::vector<Tick> &lat) {
        oss << std::left << std::setw(18) << name << std::right
            << std::setw(5) << lat.size() << std::setw(10)
            << percentile(lat, 50.0) / ticksPerMicrosecond
            << std::setw(10)
            << percentile(lat, 95.0) / ticksPerMicrosecond
            << std::setw(10)
            << percentile(lat, 99.0) / ticksPerMicrosecond << "\n";
    };
    for (const auto &[name, lat] : latenciesByWorkload())
        row(name, lat);
    std::vector<Tick> all;
    for (const TenantRecord &t : tenants)
        all.push_back(t.latency);
    row("(fleet)", all);
    return oss.str();
}

std::string
FleetReport::toJson(const std::string &platform_name,
                    std::uint64_t stream_seed) const
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(4);
    oss << "{\n";
    oss << "  \"platform\": \"" << platform_name << "\",\n";
    oss << "  \"stream_seed\": " << stream_seed << ",\n";
    oss << "  \"jobs\": " << tenants.size() << ",\n";
    oss << "  \"makespan_ticks\": " << makespan << ",\n";
    oss << "  \"latency_p50_ticks\": " << p50 << ",\n";
    oss << "  \"latency_p95_ticks\": " << p95 << ",\n";
    oss << "  \"latency_p99_ticks\": " << p99 << ",\n";
    oss << "  \"throughput_jobs_per_sec\": " << throughputJobsPerSec
        << ",\n";
    oss << "  \"payload_gbps\": " << payloadGBps << ",\n";
    oss << "  \"fabric_utilization\": " << fabricUtilization << ",\n";
    oss << "  \"election_sweeps\": " << electionSweeps << ",\n";
    oss << "  \"election_cache_hits\": " << electionCacheHits << ",\n";
    oss << "  \"admitted\": " << admitted << ",\n";
    oss << "  \"deferred_capacity\": " << deferredCapacity << ",\n";
    oss << "  \"deferred_congestion\": " << deferredCongestion
        << ",\n";
    oss << "  \"forced_admissions\": " << forcedAdmissions << ",\n";

    oss << "  \"classes\": [\n";
    const auto classes = latenciesByWorkload();
    std::size_t c = 0;
    for (const auto &[name, lat] : classes) {
        oss << "    {\"workload\": \"" << name << "\", \"jobs\": "
            << lat.size() << ", \"p50_ticks\": "
            << percentile(lat, 50.0) << ", \"p95_ticks\": "
            << percentile(lat, 95.0) << ", \"p99_ticks\": "
            << percentile(lat, 99.0) << "}"
            << (++c < classes.size() ? "," : "") << "\n";
    }
    oss << "  ],\n";

    oss << "  \"tenants\": [\n";
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        const TenantRecord &t = tenants[i];
        oss << "    {\"id\": " << t.job.id << ", \"workload\": \""
            << t.job.workload << "\", \"gpus\": " << t.job.gpus
            << ", \"priority\": " << t.job.priority
            << ", \"plane\": "
            << (t.placement.planes.empty() ? -1
                                           : t.placement.planes[0])
            << ", \"share\": " << t.placement.shareCount
            << ", \"paradigm\": \""
            << paradigmName(t.election.paradigm) << "\""
            << ", \"config\": \"" << t.election.config.toString()
            << "\", \"cache_hit\": "
            << (t.election.cacheHit ? "true" : "false")
            << ", \"arrival_ticks\": " << t.job.arrival
            << ", \"admitted_ticks\": " << t.admitted
            << ", \"queue_delay_ticks\": " << t.queueDelay
            << ", \"service_ticks\": " << t.serviceTicks
            << ", \"latency_ticks\": " << t.latency
            << ", \"met_deadline\": "
            << (t.metDeadline ? "true" : "false")
            << ", \"faults_dropped\": " << t.run.faultsDropped
            << ", \"retries\": " << t.run.retries << "}"
            << (i + 1 < tenants.size() ? "," : "") << "\n";
    }
    oss << "  ]\n";
    oss << "}\n";
    return oss.str();
}

FleetSession::FleetSession(PlatformSpec platform, Options options)
    : _platform(std::move(platform)), _options(std::move(options)),
      _elector(_platform, _options.elector),
      _fabric(_eq, _platform.fabric, _platform.numGpus),
      _monitor(_eq, _fabric, fleetHealthPolicy())
{
    if (_platform.numGpus < 2)
        fatalError("FleetSession: need a multi-GPU platform");
}

FleetSession::FleetSession(PlatformSpec platform)
    : FleetSession(std::move(platform), Options{})
{
}

void
FleetSession::feedPlane(const PlacementAllocator &allocator,
                        int plane, int samples, double ratio)
{
    const auto [src, dst] = allocator.planeRepLink(plane);
    if (src == dst)
        return;

    // Mirror the monitor's own expected-time computation so a fed
    // ratio of R lands as a per-sample queue ratio of exactly R: the
    // wire time of the sample payload at the pair's nominal rate
    // plus the fabric latency. Service time equals the expectation,
    // so the wire signal stays pinned HEALTHY — co-tenant contention
    // is queueing, never degradation.
    const std::uint64_t wire = _fabric.packetModel().wireBytes(
        _options.congestionSampleBytes,
        _fabric.packetModel().maxPayloadBytes);
    double nominal = _fabric.spec().egressRate();
    if (_fabric.pairwise())
        nominal /= static_cast<double>(_fabric.numGpus() - 1);
    const double rate =
        std::min(_fabric.effectiveEgressRate(0), nominal);
    const Tick expected =
        transferTicks(wire, rate) + _fabric.spec().latency;
    const Tick queue_delay =
        static_cast<Tick>(ratio * static_cast<double>(expected));

    for (int i = 0; i < samples; ++i) {
        _monitor.recordSample(src, dst,
                              _options.congestionSampleBytes,
                              queue_delay, expected);
    }
}

TenantRecord
FleetSession::runTenant(const JobSpec &job,
                        const Placement &placement, Tick now)
{
    TenantRecord rec;
    rec.job = job;
    rec.placement = placement;
    rec.election =
        _elector.elect(job.workload, job.gpus, placement.shareCount);

    // The tenant's world: the machine at its GPU count, with its
    // plane's per-GPU bandwidth split across the plane's tenants.
    // Running on a private slice is what makes placement isolation
    // real — no counter, fault or observer can cross tenants.
    PlatformSpec slice = _platform.withGpuCount(job.gpus);
    slice.fabric.perGpuBidirBandwidth /=
        static_cast<double>(placement.shareCount);

    auto workload = makeWorkload(job.workload, _options.scaleShift);
    workload->setFootprintScale(_options.footprintScale);
    workload->setup(job.gpus);

    Session::RunOptions run_options;
    run_options.config = rec.election.config;
    run_options.functional = _options.functional;
    if (_options.faultPlanFor) {
        run_options.faults = _options.faultPlanFor(job);
        if (!run_options.faults.empty())
            run_options.retry.enabled = true;
    }
    if (_options.observerFor)
        run_options.deliveryObserver = _options.observerFor(job);

    Session session(slice);
    rec.run =
        session.run(*workload, rec.election.paradigm, run_options);

    rec.admitted = now;
    rec.queueDelay = now - job.arrival;
    rec.serviceTicks = rec.run.ticks;
    rec.completion = now + rec.serviceTicks;
    rec.latency = rec.completion - job.arrival;
    rec.metDeadline =
        job.deadline == 0 || rec.completion <= job.deadline;
    return rec;
}

FleetReport
FleetSession::serve(const std::vector<JobSpec> &jobs)
{
    PlacementAllocator allocator(_platform, _options.placement,
                                 _options.maxTenantsPerPlane);
    AdmissionController admission(_options.admission);

    const double sweeps_before = _elector.stats().get("elect.sweeps");
    const double hits_before =
        _elector.stats().get("elect.cache_hits");

    // Fleet clock: an explicit (tick, kind, idx) event list.
    // Completions (kind 0) sort before arrivals at the same tick so
    // freed GPUs are visible to the newcomer's admission pass.
    struct Event
    {
        Tick tick;
        int kind; ///< 0 = completion (record idx), 1 = arrival (job idx).
        int idx;
    };
    auto later = [](const Event &a, const Event &b) {
        return std::tie(a.tick, a.kind, a.idx)
            > std::tie(b.tick, b.kind, b.idx);
    };
    std::priority_queue<Event, std::vector<Event>, decltype(later)>
        events(later);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        events.push(Event{jobs[i].arrival, 1, static_cast<int>(i)});

    std::vector<TenantRecord> records;
    records.reserve(jobs.size());
    std::vector<const JobSpec *> pending;
    int running = 0;

    const auto plane_congested = [&](int plane) {
        const auto [src, dst] = allocator.planeRepLink(plane);
        return src != dst
            && _monitor.linkState(src, dst) == LinkState::Congested;
    };

    while (!events.empty()) {
        const Event event = events.top();
        events.pop();
        const Tick now = event.tick;

        if (event.kind == 0) {
            const TenantRecord &done =
                records[static_cast<std::size_t>(event.idx)];
            allocator.release(done.placement);
            --running;
            // A plane that just emptied cools down: clean
            // observations decay the queue EWMA below the clear
            // threshold, re-opening the plane to co-location.
            for (const int plane : done.placement.planes) {
                if (allocator.tenantsOnPlane(plane) == 0) {
                    feedPlane(allocator, plane,
                              _options.congestionClearSamples, 0.0);
                }
            }
        } else {
            pending.push_back(
                &jobs[static_cast<std::size_t>(event.idx)]);
        }

        // Admission pass: highest priority first; admitting one job
        // only shrinks capacity, so a single sweep suffices.
        AdmissionController::sortQueue(pending);
        for (auto it = pending.begin(); it != pending.end();) {
            const JobSpec &job = **it;
            auto placement = admission.tryAdmit(
                job, allocator, plane_congested, running == 0);
            if (!placement) {
                ++it;
                continue;
            }
            records.push_back(runTenant(job, *placement, now));
            events.push(Event{records.back().completion, 0,
                              static_cast<int>(records.size()) - 1});
            ++running;
            // Fresh co-location backs up the plane's port group.
            for (const int plane : placement->planes) {
                if (allocator.tenantsOnPlane(plane) > 1) {
                    feedPlane(allocator, plane,
                              _options.congestionFeedSamples,
                              _options.sharedQueueRatio);
                }
            }
            it = pending.erase(it);
        }
    }

    if (!pending.empty()) {
        fatalError("FleetSession: job '", pending.front()->workload,
                   "' x", pending.front()->gpus,
                   " can never be placed on ", _platform.name);
    }

    FleetReport report;
    report.tenants = std::move(records);

    std::vector<Tick> latencies;
    std::uint64_t payload = 0;
    double gpu_ticks = 0.0;
    for (const TenantRecord &t : report.tenants) {
        latencies.push_back(t.latency);
        payload += t.run.payloadBytes;
        gpu_ticks += static_cast<double>(t.job.gpus)
            * static_cast<double>(t.serviceTicks);
        report.makespan = std::max(report.makespan, t.completion);
    }
    report.p50 = FleetReport::percentile(latencies, 50.0);
    report.p95 = FleetReport::percentile(latencies, 95.0);
    report.p99 = FleetReport::percentile(latencies, 99.0);
    if (report.makespan > 0) {
        const double seconds = secondsFromTicks(report.makespan);
        report.throughputJobsPerSec =
            static_cast<double>(report.tenants.size()) / seconds;
        report.payloadGBps =
            static_cast<double>(payload) / seconds / 1e9;
        report.fabricUtilization = gpu_ticks
            / (static_cast<double>(_platform.numGpus)
               * static_cast<double>(report.makespan));
    }

    const auto u64 = [](double v) {
        return static_cast<std::uint64_t>(v);
    };
    report.electionSweeps =
        u64(_elector.stats().get("elect.sweeps") - sweeps_before);
    report.electionCacheHits =
        u64(_elector.stats().get("elect.cache_hits") - hits_before);
    report.admitted =
        u64(admission.stats().get("admission.admitted"));
    report.deferredCapacity =
        u64(admission.stats().get("admission.deferred_capacity"));
    report.deferredCongestion =
        u64(admission.stats().get("admission.deferred_congestion"));
    report.forcedAdmissions =
        u64(admission.stats().get("admission.forced"));
    return report;
}

} // namespace proact::fleet
