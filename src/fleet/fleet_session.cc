#include "fleet/fleet_session.hh"

#include "sim/logging.hh"
#include "workloads/registry.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <iomanip>
#include <map>
#include <queue>
#include <sstream>
#include <tuple>
#include <utility>

namespace proact::fleet {

RecoveryPolicy
envRecoveryPolicy()
{
    RecoveryPolicy policy;
    const char *env = std::getenv("PROACT_RECOVERY");
    policy.enabled =
        env != nullptr && *env != '\0' && std::string(env) != "0";
    policy.checkpoint = envCheckpointPolicy();
    // Recovery without checkpoints restarts from iteration 0 every
    // time — a repeatedly faulted job would never converge.
    policy.checkpoint.enabled |= policy.enabled;
    policy.deviceHealth = envDeviceHealthPolicy();
    if (const char *min = std::getenv("PROACT_RECOVERY_MIN_GPUS");
        min != nullptr && *min != '\0') {
        policy.minGpus = std::clamp(std::atoi(min), 2, 64);
    }
    if (const char *max = std::getenv("PROACT_RECOVERY_MAX_ATTEMPTS");
        max != nullptr && *max != '\0') {
        policy.maxAttempts = std::clamp(std::atoi(max), 1, 16);
    }
    return policy;
}

HealthPolicy
fleetHealthPolicy()
{
    HealthPolicy policy;
    // The fleet fabric carries no payload, only booked observations:
    // there is nothing for a probe to traverse, and the fleet event
    // queue is never run.
    policy.probeInterval = 0;
    return policy;
}

Tick
FleetReport::percentile(std::vector<Tick> values, double p)
{
    if (values.empty())
        return 0;
    std::sort(values.begin(), values.end());
    // Nearest-rank: integer arithmetic on sorted ticks, so the same
    // sample set always yields the same byte-identical answer.
    const auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(values.size())));
    const std::size_t idx = rank == 0 ? 0 : rank - 1;
    return values[std::min(idx, values.size() - 1)];
}

std::map<std::string, std::vector<Tick>>
FleetReport::latenciesByWorkload() const
{
    std::map<std::string, std::vector<Tick>> classes;
    for (const TenantRecord &t : tenants)
        classes[t.job.workload].push_back(t.latency);
    return classes;
}

std::string
FleetReport::percentileTable() const
{
    std::ostringstream oss;
    oss << "class                 n     p50us     p95us     p99us\n";
    auto row = [&](const std::string &name,
                   const std::vector<Tick> &lat) {
        oss << std::left << std::setw(18) << name << std::right
            << std::setw(5) << lat.size() << std::setw(10)
            << percentile(lat, 50.0) / ticksPerMicrosecond
            << std::setw(10)
            << percentile(lat, 95.0) / ticksPerMicrosecond
            << std::setw(10)
            << percentile(lat, 99.0) / ticksPerMicrosecond << "\n";
    };
    for (const auto &[name, lat] : latenciesByWorkload())
        row(name, lat);
    std::vector<Tick> all;
    for (const TenantRecord &t : tenants)
        all.push_back(t.latency);
    row("(fleet)", all);
    // Recovery digest joins the byte-comparable artifact only when a
    // recovery happened, so fault-free tables stay unchanged.
    if (!recoveries.empty()) {
        oss << "recoveries " << recoveries.size() << " quarantined "
            << quarantinedGpus << " lost_work_p95us "
            << lostWorkP95 / ticksPerMicrosecond
            << " recovery_latency_p95us "
            << recoveryLatencyP95 / ticksPerMicrosecond << "\n";
    }
    return oss.str();
}

std::string
FleetReport::toJson(const std::string &platform_name,
                    std::uint64_t stream_seed) const
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(4);
    oss << "{\n";
    oss << "  \"platform\": \"" << platform_name << "\",\n";
    oss << "  \"stream_seed\": " << stream_seed << ",\n";
    oss << "  \"jobs\": " << tenants.size() << ",\n";
    oss << "  \"makespan_ticks\": " << makespan << ",\n";
    oss << "  \"latency_p50_ticks\": " << p50 << ",\n";
    oss << "  \"latency_p95_ticks\": " << p95 << ",\n";
    oss << "  \"latency_p99_ticks\": " << p99 << ",\n";
    oss << "  \"throughput_jobs_per_sec\": " << throughputJobsPerSec
        << ",\n";
    oss << "  \"payload_gbps\": " << payloadGBps << ",\n";
    oss << "  \"fabric_utilization\": " << fabricUtilization << ",\n";
    oss << "  \"election_sweeps\": " << electionSweeps << ",\n";
    oss << "  \"election_cache_hits\": " << electionCacheHits << ",\n";
    oss << "  \"admitted\": " << admitted << ",\n";
    oss << "  \"deferred_capacity\": " << deferredCapacity << ",\n";
    oss << "  \"deferred_congestion\": " << deferredCongestion
        << ",\n";
    oss << "  \"forced_admissions\": " << forcedAdmissions << ",\n";
    oss << "  \"recoveries\": " << recoveries.size() << ",\n";
    oss << "  \"quarantined_gpus\": " << quarantinedGpus << ",\n";
    oss << "  \"lost_work_p50_ticks\": " << lostWorkP50 << ",\n";
    oss << "  \"lost_work_p95_ticks\": " << lostWorkP95 << ",\n";
    oss << "  \"recovery_latency_p50_ticks\": " << recoveryLatencyP50
        << ",\n";
    oss << "  \"recovery_latency_p95_ticks\": " << recoveryLatencyP95
        << ",\n";

    oss << "  \"recovery_events\": [\n";
    for (std::size_t i = 0; i < recoveries.size(); ++i) {
        const RecoveryEvent &ev = recoveries[i];
        oss << "    {\"job\": " << ev.jobId << ", \"attempt\": "
            << ev.attempt << ", \"lost_gpu\": " << ev.lostGpu
            << ", \"resume_iteration\": " << ev.resumeIteration
            << ", \"abort_ticks\": " << ev.abortTick
            << ", \"readmit_ticks\": " << ev.readmitTick
            << ", \"lost_work_ticks\": " << ev.lostWork << "}"
            << (i + 1 < recoveries.size() ? "," : "") << "\n";
    }
    oss << "  ],\n";

    oss << "  \"classes\": [\n";
    const auto classes = latenciesByWorkload();
    std::size_t c = 0;
    for (const auto &[name, lat] : classes) {
        oss << "    {\"workload\": \"" << name << "\", \"jobs\": "
            << lat.size() << ", \"p50_ticks\": "
            << percentile(lat, 50.0) << ", \"p95_ticks\": "
            << percentile(lat, 95.0) << ", \"p99_ticks\": "
            << percentile(lat, 99.0) << "}"
            << (++c < classes.size() ? "," : "") << "\n";
    }
    oss << "  ],\n";

    oss << "  \"tenants\": [\n";
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        const TenantRecord &t = tenants[i];
        oss << "    {\"id\": " << t.job.id << ", \"workload\": \""
            << t.job.workload << "\", \"gpus\": " << t.job.gpus
            << ", \"priority\": " << t.job.priority
            << ", \"plane\": "
            << (t.placement.planes.empty() ? -1
                                           : t.placement.planes[0])
            << ", \"share\": " << t.placement.shareCount
            << ", \"paradigm\": \""
            << paradigmName(t.election.paradigm) << "\""
            << ", \"config\": \"" << t.election.config.toString()
            << "\", \"cache_hit\": "
            << (t.election.cacheHit ? "true" : "false")
            << ", \"arrival_ticks\": " << t.job.arrival
            << ", \"admitted_ticks\": " << t.admitted
            << ", \"elected_at_ticks\": " << t.electedAt
            << ", \"queue_delay_ticks\": " << t.queueDelay
            << ", \"service_ticks\": " << t.serviceTicks
            << ", \"latency_ticks\": " << t.latency
            << ", \"met_deadline\": "
            << (t.metDeadline ? "true" : "false")
            << ", \"attempt\": " << t.attempt
            << ", \"first_iteration\": " << t.firstIteration
            << ", \"faults_dropped\": " << t.run.faultsDropped
            << ", \"retries\": " << t.run.retries << "}"
            << (i + 1 < tenants.size() ? "," : "") << "\n";
    }
    oss << "  ]\n";
    oss << "}\n";
    return oss.str();
}

FleetSession::FleetSession(PlatformSpec platform, Options options)
    : _platform(std::move(platform)), _options(std::move(options)),
      _elector(_platform, _options.elector),
      _fabric(_eq, _platform.fabric, _platform.numGpus),
      _monitor(_eq, _fabric, fleetHealthPolicy())
{
    if (_platform.numGpus < 2)
        fatalError("FleetSession: need a multi-GPU platform");
}

FleetSession::FleetSession(PlatformSpec platform)
    : FleetSession(std::move(platform), Options{})
{
}

void
FleetSession::feedPlane(const PlacementAllocator &allocator,
                        int plane, int samples, double ratio)
{
    const auto [src, dst] = allocator.planeRepLink(plane);
    if (src == dst)
        return;

    // Mirror the monitor's own expected-time computation so a fed
    // ratio of R lands as a per-sample queue ratio of exactly R: the
    // wire time of the sample payload at the pair's nominal rate
    // plus the pair's latency. On a pairwise fabric all three inputs
    // are per-pair (a multi-node plane's rep link is an intra-node
    // pair with an intra-node divisor, not a machine-wide one).
    // Service time equals the expectation, so the wire signal stays
    // pinned HEALTHY — co-tenant contention is queueing, never
    // degradation.
    const PacketModel &packet = _fabric.pairwise()
        ? _fabric.pairPacketModel(src, dst)
        : _fabric.packetModel();
    const std::uint64_t wire = packet.wireBytes(
        _options.congestionSampleBytes, packet.maxPayloadBytes);
    double nominal = _fabric.spec().egressRate();
    if (_fabric.pairwise())
        nominal = _fabric.nominalPairRate(src, dst);
    const double rate =
        std::min(_fabric.effectiveEgressRate(0), nominal);
    const Tick expected = transferTicks(wire, rate)
        + (_fabric.pairwise() ? _fabric.pairLatency(src, dst)
                              : _fabric.spec().latency);
    const Tick queue_delay =
        static_cast<Tick>(ratio * static_cast<double>(expected));

    for (int i = 0; i < samples; ++i) {
        _monitor.recordSample(src, dst,
                              _options.congestionSampleBytes,
                              queue_delay, expected);
    }
}

TenantRecord
FleetSession::runTenant(const JobSpec &job,
                        const Placement &placement, Tick now,
                        int attempt, int first_iteration)
{
    TenantRecord rec;
    rec.job = job;
    rec.placement = placement;
    rec.attempt = attempt;
    rec.firstIteration = first_iteration;
    // A resumed job re-elects for its (possibly shrunk) GPU count
    // and its new plane share — the elector cache makes a repeat
    // shape free.
    rec.election =
        _elector.elect(job.workload, job.gpus, placement.shareCount);

    // The tenant's world: the machine at its GPU count, with its
    // plane's per-GPU bandwidth split across the plane's tenants.
    // Running on a private slice is what makes placement isolation
    // real — no counter, fault or observer can cross tenants.
    PlatformSpec slice = _platform.withGpuCount(job.gpus);
    slice.fabric.perGpuBidirBandwidth /=
        static_cast<double>(placement.shareCount);

    auto workload = makeWorkload(job.workload, _options.scaleShift);
    workload->setFootprintScale(_options.footprintScale);
    workload->setup(job.gpus);

    Session::RunOptions run_options;
    run_options.config = rec.election.config;
    run_options.functional = _options.functional;
    if (_options.faultPlanFor) {
        run_options.faults = _options.faultPlanFor(job, attempt);
        if (!run_options.faults.empty())
            run_options.retry.enabled = true;
    }
    if (_options.observerFor)
        run_options.deliveryObserver = _options.observerFor(job);
    if (_options.recovery.enabled) {
        run_options.deviceHealth = true;
        run_options.deviceHealthPolicy = _options.recovery.deviceHealth;
        run_options.checkpoint = _options.recovery.checkpoint;
        run_options.firstIteration = first_iteration;
    }

    Session session(slice);
    rec.run =
        session.run(*workload, rec.election.paradigm, run_options);

    rec.admitted = now;
    rec.queueDelay = now - job.arrival;
    if (_options.chargeElections)
        rec.electionSweepTicks = rec.election.sweepCost;
    // The sweep runs before the tenant's kernels: the decision lands
    // (and the run starts) only after its charged cost elapses.
    rec.electedAt = now + rec.electionSweepTicks;
    if (first_iteration > 0)
        rec.restoreTicks = _options.recovery.checkpoint.cost;
    rec.serviceTicks =
        rec.run.ticks + rec.electionSweepTicks + rec.restoreTicks;
    rec.completion = now + rec.serviceTicks;
    rec.latency = rec.completion - job.arrival;
    rec.metDeadline =
        job.deadline == 0 || rec.completion <= job.deadline;
    return rec;
}

FleetReport
FleetSession::serve(const std::vector<JobSpec> &jobs)
{
    PlacementAllocator allocator(_platform, _options.placement,
                                 _options.maxTenantsPerPlane);
    AdmissionController admission(_options.admission);

    const double sweeps_before = _elector.stats().get("elect.sweeps");
    const double hits_before =
        _elector.stats().get("elect.cache_hits");

    // Fleet clock: an explicit (tick, kind, idx) event list.
    // Completions (kind 0) sort before arrivals at the same tick so
    // freed GPUs are visible to the newcomer's admission pass.
    struct Event
    {
        Tick tick;
        int kind; ///< 0 = completion (record idx), 1 = arrival (job idx).
        int idx;
    };
    auto later = [](const Event &a, const Event &b) {
        return std::tie(a.tick, a.kind, a.idx)
            > std::tie(b.tick, b.kind, b.idx);
    };
    std::priority_queue<Event, std::vector<Event>, decltype(later)>
        events(later);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        events.push(Event{jobs[i].arrival, 1, static_cast<int>(i)});

    std::vector<TenantRecord> records;
    records.reserve(jobs.size());
    std::vector<const JobSpec *> pending;
    int running = 0;

    // Device-loss recovery bookkeeping. Resumed specs live in a
    // deque (stable addresses for the pending pointers) and keep the
    // job's original arrival, so a recovered job's latency spans its
    // whole life — queueing, the killed attempt, and the restart.
    struct ResumeState
    {
        int attempt = 0;
        int firstIteration = 0;
        std::size_t openRecovery = 0; ///< Index into recoveries.
    };
    std::map<int, ResumeState> resume;
    std::deque<JobSpec> respawned;
    std::vector<RecoveryEvent> recoveries;

    const auto plane_congested = [&](int plane) {
        const auto [src, dst] = allocator.planeRepLink(plane);
        return src != dst
            && _monitor.linkState(src, dst) == LinkState::Congested;
    };

    while (!events.empty()) {
        const Event event = events.top();
        events.pop();
        const Tick now = event.tick;

        if (event.kind == 0) {
            const TenantRecord &done =
                records[static_cast<std::size_t>(event.idx)];
            allocator.release(done.placement);
            --running;
            // A plane that just emptied cools down: clean
            // observations decay the queue EWMA below the clear
            // threshold, re-opening the plane to co-location.
            for (const int plane : done.placement.planes) {
                if (allocator.tenantsOnPlane(plane) == 0) {
                    feedPlane(allocator, plane,
                              _options.congestionClearSamples, 0.0);
                }
            }

            if (done.run.aborted && _options.recovery.enabled) {
                // The run's lostGpu is a slice-local id; the fleet
                // quarantines the physical device behind it.
                const int physical = done.placement.gpus.at(
                    static_cast<std::size_t>(done.run.lostGpu));
                allocator.quarantine(physical);

                ResumeState &state = resume[done.job.id];
                state.attempt = done.attempt + 1;
                if (state.attempt > _options.recovery.maxAttempts) {
                    fatalError("FleetSession: job ", done.job.id,
                               " exceeded ",
                               _options.recovery.maxAttempts,
                               " restart attempts");
                }
                // Checkpoints from earlier attempts survive: an
                // attempt that died before its first checkpoint
                // resumes from where the previous one left off.
                state.firstIteration = std::max(
                    state.firstIteration,
                    done.run.checkpointIteration + 1);

                RecoveryEvent ev;
                ev.jobId = done.job.id;
                ev.attempt = done.attempt;
                ev.lostGpu = physical;
                ev.resumeIteration = state.firstIteration;
                ev.abortTick = now;
                // Progress past the resume point is discarded:
                // prorate the killed attempt's service time over its
                // uncheckpointed iterations.
                const int executed = done.run.completedIterations
                    - done.firstIteration;
                const int preserved = std::max(
                    0, state.firstIteration - done.firstIteration);
                ev.lostWork = executed > 0
                    ? done.serviceTicks
                        * static_cast<Tick>(executed - preserved)
                        / static_cast<Tick>(executed)
                    : done.serviceTicks;
                state.openRecovery = recoveries.size();
                recoveries.push_back(ev);

                // Re-enter the queue, shrunk to what the surviving
                // planes can ever grant.
                JobSpec restart = done.job;
                const int capacity = allocator.maxAllocatableGpus();
                if (restart.gpus > capacity) {
                    if (capacity < _options.recovery.minGpus) {
                        fatalError("FleetSession: only ", capacity,
                                   " allocatable GPUs left, below "
                                   "the recovery floor of ",
                                   _options.recovery.minGpus);
                    }
                    restart.gpus = capacity;
                }
                respawned.push_back(std::move(restart));
                pending.push_back(&respawned.back());
            }
        } else {
            pending.push_back(
                &jobs[static_cast<std::size_t>(event.idx)]);
        }

        // Admission pass: highest priority first; admitting one job
        // only shrinks capacity, so a single sweep suffices.
        AdmissionController::sortQueue(pending);
        for (auto it = pending.begin(); it != pending.end();) {
            const JobSpec *spec = *it;
            auto placement = admission.tryAdmit(
                *spec, allocator, plane_congested, running == 0);
            if (!placement && _options.recovery.enabled
                && spec->gpus > allocator.maxAllocatableGpus()) {
                // Quarantine shrank the machine under a waiting
                // job's feet: clamp the request to what a surviving
                // plane can ever grant (same floor as a respawn) and
                // retry at once — this pass may be the last event.
                const int capacity = allocator.maxAllocatableGpus();
                if (capacity < _options.recovery.minGpus) {
                    fatalError("FleetSession: only ", capacity,
                               " allocatable GPUs left, below the "
                               "recovery floor of ",
                               _options.recovery.minGpus);
                }
                JobSpec shrunk = *spec;
                shrunk.gpus = capacity;
                respawned.push_back(std::move(shrunk));
                *it = spec = &respawned.back();
                placement = admission.tryAdmit(
                    *spec, allocator, plane_congested, running == 0);
            }
            if (!placement) {
                ++it;
                continue;
            }
            const JobSpec &job = *spec;
            int attempt = 0;
            int first_iteration = 0;
            if (const auto rs = resume.find(job.id);
                rs != resume.end()) {
                attempt = rs->second.attempt;
                first_iteration = rs->second.firstIteration;
                recoveries.at(rs->second.openRecovery).readmitTick =
                    now;
            }
            records.push_back(runTenant(job, *placement, now,
                                        attempt, first_iteration));
            events.push(Event{records.back().completion, 0,
                              static_cast<int>(records.size()) - 1});
            ++running;
            // Fresh co-location backs up the plane's port group.
            for (const int plane : placement->planes) {
                if (allocator.tenantsOnPlane(plane) > 1) {
                    feedPlane(allocator, plane,
                              _options.congestionFeedSamples,
                              _options.sharedQueueRatio);
                }
            }
            it = pending.erase(it);
        }
    }

    if (!pending.empty()) {
        fatalError("FleetSession: job '", pending.front()->workload,
                   "' x", pending.front()->gpus,
                   " can never be placed on ", _platform.name);
    }

    FleetReport report;
    report.recoveries = std::move(recoveries);
    report.quarantinedGpus =
        static_cast<std::uint64_t>(allocator.quarantinedGpus());

    // Killed attempts still consumed fleet time and fabric capacity
    // (makespan, utilization, payload), but only each job's final
    // successful attempt is a served tenant with a latency.
    std::vector<Tick> latencies;
    std::uint64_t payload = 0;
    double gpu_ticks = 0.0;
    for (TenantRecord &t : records) {
        payload += t.run.payloadBytes;
        gpu_ticks += static_cast<double>(t.job.gpus)
            * static_cast<double>(t.serviceTicks);
        report.makespan = std::max(report.makespan, t.completion);
        if (t.run.aborted)
            continue;
        latencies.push_back(t.latency);
        report.tenants.push_back(std::move(t));
    }

    {
        std::vector<Tick> lost, latency;
        for (const RecoveryEvent &ev : report.recoveries) {
            lost.push_back(ev.lostWork);
            latency.push_back(ev.readmitTick - ev.abortTick);
        }
        report.lostWorkP50 = FleetReport::percentile(lost, 50.0);
        report.lostWorkP95 = FleetReport::percentile(lost, 95.0);
        report.recoveryLatencyP50 =
            FleetReport::percentile(latency, 50.0);
        report.recoveryLatencyP95 =
            FleetReport::percentile(latency, 95.0);
    }
    report.p50 = FleetReport::percentile(latencies, 50.0);
    report.p95 = FleetReport::percentile(latencies, 95.0);
    report.p99 = FleetReport::percentile(latencies, 99.0);
    if (report.makespan > 0) {
        const double seconds = secondsFromTicks(report.makespan);
        report.throughputJobsPerSec =
            static_cast<double>(report.tenants.size()) / seconds;
        report.payloadGBps =
            static_cast<double>(payload) / seconds / 1e9;
        report.fabricUtilization = gpu_ticks
            / (static_cast<double>(_platform.numGpus)
               * static_cast<double>(report.makespan));
    }

    const auto u64 = [](double v) {
        return static_cast<std::uint64_t>(v);
    };
    report.electionSweeps =
        u64(_elector.stats().get("elect.sweeps") - sweeps_before);
    report.electionCacheHits =
        u64(_elector.stats().get("elect.cache_hits") - hits_before);
    report.admitted =
        u64(admission.stats().get("admission.admitted"));
    report.deferredCapacity =
        u64(admission.stats().get("admission.deferred_capacity"));
    report.deferredCongestion =
        u64(admission.stats().get("admission.deferred_congestion"));
    report.forcedAdmissions =
        u64(admission.stats().get("admission.forced"));
    return report;
}

} // namespace proact::fleet
