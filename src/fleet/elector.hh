/**
 * @file
 * Per-tenant strategy election from a persistent profiler cache.
 *
 * Each admitted tenant needs a paradigm (PROACT inline vs decoupled)
 * and a TransferConfig tuned for the fabric slice it was placed on.
 * The elector keys results on (workload, gpus, shareCount): a cache
 * hit costs nothing; a miss runs a *narrowed* profiler sweep — the
 * same windowed search space the AdaptiveReprofiler uses online
 * (AdaptiveReprofiler::narrowedOptions) — on a bandwidth-scaled copy
 * of the platform, then memoizes the winner for every later tenant
 * of the same shape.
 */

#ifndef PROACT_FLEET_ELECTOR_HH
#define PROACT_FLEET_ELECTOR_HH

#include "harness/paradigm.hh"
#include "proact/reprofiler.hh"
#include "sim/stats.hh"
#include "system/platform.hh"

#include <map>
#include <string>

namespace proact::fleet {

/** One elected serving strategy. */
struct Election
{
    Paradigm paradigm = Paradigm::ProactDecoupled;
    TransferConfig config;

    /** Served from the cache (no sweep ran for this request). */
    bool cacheHit = false;

    /**
     * Simulated cost of the sweep that produced this election
     * (ProfileResult::sweepTicks); 0 on a cache hit. Fleet sessions
     * charging elections to the timeline stall the tenant's start by
     * this much — closing ROADMAP gap (a) for cache-miss sweeps.
     */
    Tick sweepCost = 0;
};

/** Caching (workload, gpus, shareCount) -> strategy elector. */
class StrategyElector
{
  public:
    struct Options
    {
        /** Narrowed-window shape shared with the reprofiler. */
        AdaptiveReprofiler::Options narrow;

        /** Centre of the narrowed window on a cache miss. */
        TransferConfig anchor;

        /** Let the sweep elect ProactInline when it wins outright. */
        bool considerInline = true;

        /** Iterations per candidate in the election sweep. */
        int profileIterations = 1;

        /**
         * Scale shift of the short profiling instance (the election
         * optimizes communication ratios, which are scale-invariant
         * by construction, so a heavily scaled-down instance elects
         * the same winner at a fraction of the cost).
         */
        int scaleShift = 6;
    };

    StrategyElector(PlatformSpec platform, Options options);

    /** Same, with default Options (overload: a nested class's member
     * initializers cannot appear in a default argument). */
    explicit StrategyElector(PlatformSpec platform);

    /**
     * Elect a strategy for @p workload on @p gpus GPUs whose plane
     * is split @p share_count ways. Deterministic: the same key
     * always yields the same election, swept at most once per
     * elector lifetime.
     */
    Election elect(const std::string &workload, int gpus,
                   int share_count);

    /**
     * Stats: elect.requests, elect.cache_hits, elect.sweeps,
     * elect.candidates (configurations measured across all sweeps).
     */
    StatSet &stats() { return _stats; }
    const StatSet &stats() const { return _stats; }

  private:
    PlatformSpec _platform;
    Options _options;
    StatSet _stats;
    std::map<std::string, Election> _cache;
};

} // namespace proact::fleet

#endif // PROACT_FLEET_ELECTOR_HH
