/**
 * @file
 * Multi-tenant fleet serving on one simulated fabric.
 *
 * A FleetSession drives a seeded stream of jobs through the
 * admission -> placement -> election -> run pipeline:
 *
 *  - arrivals enter a priority queue (admission.hh);
 *  - the placement allocator seats each admitted tenant on a plane
 *    subset of the machine (placement.hh);
 *  - the strategy elector picks paradigm + TransferConfig from its
 *    profiler cache, sweeping a narrowed window on a miss
 *    (elector.hh);
 *  - the tenant executes through the ordinary Session harness on a
 *    platform slice (its GPU count, its plane's bandwidth share),
 *    optionally with a per-tenant fault plan and delivery observer.
 *
 * Fabric-wide contention is tracked by a fleet-owned
 * LinkHealthMonitor: when a plane becomes shared the session books
 * synthetic queueing observations on the plane's representative
 * link, driving it CONGESTED exactly as real co-tenant backlog
 * would; when the plane empties, clean observations decay the EWMA
 * and the link recovers. Admission consults that state before
 * co-locating.
 *
 * Everything is deterministic: the fleet clock is a discrete event
 * list ordered by (tick, kind, id), every per-job random draw comes
 * from a derived seed, and each tenant's nested simulation is
 * tick-exact, so two serves of the same stream produce bit-identical
 * reports.
 */

#ifndef PROACT_FLEET_FLEET_SESSION_HH
#define PROACT_FLEET_FLEET_SESSION_HH

#include "fleet/admission.hh"
#include "fleet/elector.hh"
#include "fleet/job.hh"
#include "fleet/placement.hh"
#include "harness/session.hh"
#include "proact/config.hh"
#include "health/link_health.hh"
#include "interconnect/interconnect.hh"
#include "sim/event_queue.hh"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace proact::fleet {

/**
 * Device-loss recovery behaviour for the whole fleet (ISSUE:
 * checkpointed job recovery and GPU quarantine). When enabled, every
 * tenant runs with the device watchdog and iteration-boundary
 * checkpoints armed; an aborted tenant releases its placement, the
 * dead physical GPU is quarantined for the rest of the serve, and
 * the job re-enters the admission queue to restart from its latest
 * checkpoint — shrunk onto surviving GPUs when its original request
 * no longer fits any plane.
 */
struct RecoveryPolicy
{
    bool enabled = false;

    /** Checkpoints for every tenant run (restore costs one
     * checkpoint.cost at restart). */
    CheckpointPolicy checkpoint{true};

    /** Watchdog thresholds for every tenant run. */
    DeviceHealthPolicy deviceHealth;

    /** Never shrink a resumed job below this many GPUs. */
    int minGpus = 2;

    /** Restart budget per job; exceeding it is a fleet error. */
    int maxAttempts = 4;
};

/**
 * Recovery knobs from the environment:
 *  - PROACT_RECOVERY=1             enable checkpointed recovery
 *  - PROACT_RECOVERY_MIN_GPUS      shrink floor (default 2,
 *                                  clamp [2, 64])
 *  - PROACT_RECOVERY_MAX_ATTEMPTS  restart budget (default 4,
 *                                  clamp [1, 16])
 * plus the PROACT_CHECKPOINT_* / PROACT_DEVICE_HEALTH_* families for
 * the nested policies (checkpointing is forced on when recovery is
 * on — restarting from iteration 0 forever would never converge).
 */
RecoveryPolicy envRecoveryPolicy();

/** Everything the fleet learned about one served tenant. */
struct TenantRecord
{
    JobSpec job;
    Placement placement;
    Election election;

    Tick admitted = 0;     ///< Fleet tick the job started.
    Tick queueDelay = 0;   ///< admitted - arrival.

    /**
     * Fleet tick the election decision took effect: admitted when
     * sweeps are free, admitted + electionSweepTicks when
     * Options::chargeElections bills a cache-miss sweep to the
     * timeline (the tenant's run starts only after the sweep).
     */
    Tick electedAt = 0;
    Tick serviceTicks = 0; ///< Nested makespan + charges (below).
    Tick completion = 0;   ///< admitted + serviceTicks.
    Tick latency = 0;      ///< completion - arrival.
    bool metDeadline = true;

    /** Restart ordinal (0 = first attempt). */
    int attempt = 0;

    /** Iteration this attempt resumed from (0 = from the start). */
    int firstIteration = 0;

    /** Election sweep cost charged to the timeline (0 unless
     * Options::chargeElections). */
    Tick electionSweepTicks = 0;

    /** Checkpoint-restore cost charged at a resumed start. */
    Tick restoreTicks = 0;

    /** Harness counters of the tenant's run. */
    ParadigmRun run;
};

/** One device-loss -> restart episode observed during a serve. */
struct RecoveryEvent
{
    int jobId = 0;

    /** Attempt that was killed (0-based). */
    int attempt = 0;

    /** Physical GPU quarantined. */
    int lostGpu = -1;

    /** Iteration the restart resumed from. */
    int resumeIteration = 0;

    Tick abortTick = 0;   ///< Fleet tick the abort surfaced.
    Tick readmitTick = 0; ///< Fleet tick the restart began running.

    /**
     * Simulated progress discarded by the restart: the aborted
     * attempt's service time prorated over the iterations that were
     * not covered by a checkpoint.
     */
    Tick lostWork = 0;
};

/** Aggregate outcome of one serve() call. */
struct FleetReport
{
    /** Final (successful) attempt of every job; aborted attempts
     * appear only in @c recoveries. */
    std::vector<TenantRecord> tenants;

    Tick makespan = 0;

    /** Fleet-wide latency percentiles (nearest-rank). */
    Tick p50 = 0;
    Tick p95 = 0;
    Tick p99 = 0;

    /** Jobs finished per second of fleet time. */
    double throughputJobsPerSec = 0.0;

    /** Payload moved across all tenants, GB per fleet second. */
    double payloadGBps = 0.0;

    /** Sum(gpus x service) / (machine GPUs x makespan). */
    double fabricUtilization = 0.0;

    std::uint64_t electionSweeps = 0;
    std::uint64_t electionCacheHits = 0;
    std::uint64_t admitted = 0;
    std::uint64_t deferredCapacity = 0;
    std::uint64_t deferredCongestion = 0;
    std::uint64_t forcedAdmissions = 0;

    /** @{ @name Device-loss recovery telemetry */
    std::vector<RecoveryEvent> recoveries;
    std::uint64_t quarantinedGpus = 0;

    /** Lost-work percentiles over @c recoveries (nearest-rank). */
    Tick lostWorkP50 = 0;
    Tick lostWorkP95 = 0;

    /** Abort-to-restart latency percentiles over @c recoveries. */
    Tick recoveryLatencyP50 = 0;
    Tick recoveryLatencyP95 = 0;
    /** @} */

    /** Latency percentile of @p values (nearest-rank, p in (0,100]). */
    static Tick percentile(std::vector<Tick> values, double p);

    /** Per-workload-class latency percentiles, name-sorted. */
    std::map<std::string, std::vector<Tick>> latenciesByWorkload()
        const;

    /**
     * Canonical text table of per-tenant and per-class percentiles —
     * the byte-comparable determinism artifact benches diff across
     * runs.
     */
    std::string percentileTable() const;

    /** Machine-readable report (BENCH_fleet.json payload). */
    std::string toJson(const std::string &platform_name,
                       std::uint64_t stream_seed) const;
};

/** Orchestrates admission, placement, election and execution. */
class FleetSession
{
  public:
    struct Options
    {
        PlacementMode placement = PlacementMode::PlaneSharing;
        int maxTenantsPerPlane = 2;
        AdmissionPolicy admission;
        StrategyElector::Options elector;

        /** Functional (verified) tenant runs; timing-only default. */
        bool functional = false;

        /** Scale shift applied to every tenant workload instance. */
        int scaleShift = 6;

        /** Footprint scale applied to every tenant instance. */
        std::uint64_t footprintScale = 1;

        /**
         * Per-tenant fault schedule (empty plan = clean run). Lets
         * tests fault one tenant and assert the neighbours never
         * notice. Called with the restart ordinal so a recovery
         * campaign can hand the device-loss episode to attempt 0 and
         * a clean (or differently faulted) plan to the restart.
         */
        std::function<FaultPlan(const JobSpec &, int attempt)>
            faultPlanFor;

        /** Checkpointed device-loss recovery (see RecoveryPolicy). */
        RecoveryPolicy recovery;

        /**
         * Charge each cache-miss election sweep's simulated cost to
         * the elected tenant's timeline (the fleet face of
         * PROACT_REPROFILE_CHARGE — cache hits stay free, which is
         * the point of the persistent elector cache). Defaults from
         * the environment so benches pick it up without plumbing.
         */
        bool chargeElections = envReprofileChargeEnabled();

        /**
         * Per-tenant delivery observer, registered on the tenant's
         * private fabric next to its health machinery.
         */
        std::function<Interconnect::DeliveryObserver(const JobSpec &)>
            observerFor;

        /** @{ @name Synthetic plane-contention feed
         * Queue-ratio target and sample counts booked on a plane's
         * representative link when it becomes shared / empties.
         * sharedQueueRatio must exceed the monitor's CONGESTED entry
         * threshold for sharing to register.
         */
        double sharedQueueRatio = 4.0;
        int congestionFeedSamples = 6;
        int congestionClearSamples = 12;
        std::uint64_t congestionSampleBytes = 1 * MiB;
        /** @} */
    };

    FleetSession(PlatformSpec platform, Options options);

    /** Same, with default Options (overload: a nested class's member
     * initializers cannot appear in a default argument). */
    explicit FleetSession(PlatformSpec platform);

    /**
     * Serve the whole stream to completion and report. Callable
     * repeatedly; the election cache persists across calls (a second
     * serve of the same stream elects without sweeping).
     */
    FleetReport serve(const std::vector<JobSpec> &jobs);

    StrategyElector &elector() { return _elector; }
    const LinkHealthMonitor &health() const { return _monitor; }
    const PlatformSpec &platform() const { return _platform; }
    const Options &options() const { return _options; }

  private:
    PlatformSpec _platform;
    Options _options;
    StrategyElector _elector;

    /**
     * Fleet-level fabric bookkeeping: never carries tenant payload
     * (each tenant simulates on its own private system), but its
     * health monitor holds the cross-tenant congestion state that
     * admission consults. The event queue only provides the
     * monitor's clock; it is never run.
     */
    EventQueue _eq;
    Interconnect _fabric;
    LinkHealthMonitor _monitor;

    /** Book @p samples observations at @p ratio on a plane's link. */
    void feedPlane(const PlacementAllocator &allocator, int plane,
                   int samples, double ratio);

    /** Execute one admitted tenant on its platform slice. */
    TenantRecord runTenant(const JobSpec &job,
                           const Placement &placement, Tick now,
                           int attempt, int first_iteration);
};

/** Monitor policy used for the fleet-level congestion state. */
HealthPolicy fleetHealthPolicy();

} // namespace proact::fleet

#endif // PROACT_FLEET_FLEET_SESSION_HH
