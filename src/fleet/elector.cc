#include "fleet/elector.hh"

#include "proact/profiler.hh"
#include "sim/logging.hh"
#include "workloads/registry.hh"

#include <utility>

namespace proact::fleet {

StrategyElector::StrategyElector(PlatformSpec platform,
                                 Options options)
    : _platform(std::move(platform)), _options(std::move(options))
{
}

StrategyElector::StrategyElector(PlatformSpec platform)
    : StrategyElector(std::move(platform), Options{})
{
}

Election
StrategyElector::elect(const std::string &workload, int gpus,
                       int share_count)
{
    if (gpus < 2)
        fatalError("StrategyElector: need >= 2 GPUs, got ", gpus);
    if (share_count < 1)
        fatalError("StrategyElector: bad share count ", share_count);

    _stats.inc("elect.requests");
    const std::string key = workload + "|" + std::to_string(gpus)
        + "|" + std::to_string(share_count);
    if (const auto it = _cache.find(key); it != _cache.end()) {
        _stats.inc("elect.cache_hits");
        Election hit = it->second;
        hit.cacheHit = true;
        hit.sweepCost = 0; // Memoized result: nothing was measured.
        return hit;
    }

    // Cache miss: narrowed sweep on the tenant's fabric slice. The
    // slice is the full platform at the requested GPU count with the
    // plane's per-GPU bandwidth split across its tenants — sharing
    // shifts the compute/communication balance, so a shared slice
    // may elect a different granularity than an exclusive one.
    _stats.inc("elect.sweeps");
    PlatformSpec slice = _platform.withGpuCount(gpus);
    slice.fabric.perGpuBidirBandwidth /=
        static_cast<double>(share_count);

    Profiler::Options opts = AdaptiveReprofiler::narrowedOptions(
        _options.anchor, _options.narrow);
    opts.includeInline = _options.considerInline;
    opts.profileIterations = _options.profileIterations;

    Profiler profiler(slice, opts);
    auto instance = makeWorkload(workload, _options.scaleShift);
    instance->setup(gpus);
    const ProfileResult result = profiler.profile(*instance);
    _stats.inc("elect.candidates",
               static_cast<double>(result.entries.size())
                   + (opts.includeInline ? 1.0 : 0.0));

    Election election;
    election.config = result.best;
    election.sweepCost = result.sweepTicks;
    election.paradigm =
        result.best.mechanism == TransferMechanism::Inline
        ? Paradigm::ProactInline
        : Paradigm::ProactDecoupled;
    _cache.emplace(key, election);
    return election;
}

} // namespace proact::fleet
