/**
 * @file
 * Job descriptions and seeded arrival streams for fleet serving.
 *
 * A fleet run serves a stream of independent tenants, each a
 * registry workload at some GPU count with a priority and an
 * optional deadline. The stream is generated from a campaign seed
 * with one derived random stream per job (deriveSeed), so appending
 * jobs to a campaign never perturbs the existing ones and two runs
 * of the same (seed, count) produce bit-identical streams.
 */

#ifndef PROACT_FLEET_JOB_HH
#define PROACT_FLEET_JOB_HH

#include "sim/types.hh"

#include <cstdint>
#include <string>
#include <vector>

namespace proact::fleet {

/** One tenant request entering the fleet. */
struct JobSpec
{
    /** Stable id; also the seed-stream index within the campaign. */
    int id = 0;

    /** Registry name (workloads/registry.hh). */
    std::string workload;

    /** GPUs requested (must fit one placement plane, see placement). */
    int gpus = 2;

    /** Larger = more urgent; breaks admission-order ties. */
    int priority = 0;

    /** Fleet-clock tick the job becomes eligible. */
    Tick arrival = 0;

    /** Completion deadline (0 = none). */
    Tick deadline = 0;

    /** Per-job random stream seed (derived by the generator). */
    std::uint64_t seed = 0;

    /** One-line digest, e.g. "job7 Jacobi x4 prio2 @12ms". */
    std::string describe() const;
};

/** Parameters of the seeded arrival-stream generator. */
struct ArrivalModel
{
    std::uint64_t seed = 1;
    int numJobs = 32;

    /**
     * Mean of the exponential inter-arrival gap. The default sits
     * near typical scaled-down tenant service times so a served
     * stream actually overlaps: placements contend, planes share,
     * and admission has queues to order.
     */
    Tick meanInterarrival = 100 * ticksPerMicrosecond;

    /** Candidate workloads; empty = the full standard registry. */
    std::vector<std::string> workloads;

    /** Candidate GPU counts, drawn uniformly. */
    std::vector<int> gpuCounts = {2, 4, 8};

    /** Priorities drawn uniformly from [0, numPriorities). */
    int numPriorities = 3;

    /** Fraction of jobs carrying a deadline. */
    double deadlineFraction = 0.25;

    /** Deadline slack, as a multiple of meanInterarrival. */
    double deadlineSlack = 16.0;
};

/**
 * Generate @p model.numJobs jobs with exponential inter-arrival
 * times. Job i draws everything from its own stream seeded
 * deriveSeed(model.seed, i); arrivals accumulate in id order.
 */
std::vector<JobSpec> generateJobStream(const ArrivalModel &model);

} // namespace proact::fleet

#endif // PROACT_FLEET_JOB_HH
