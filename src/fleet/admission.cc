#include "fleet/admission.hh"

#include <algorithm>
#include <utility>

namespace proact::fleet {

AdmissionController::AdmissionController(AdmissionPolicy policy)
    : _policy(std::move(policy))
{
}

void
AdmissionController::sortQueue(std::vector<const JobSpec *> &queue)
{
    std::stable_sort(
        queue.begin(), queue.end(),
        [](const JobSpec *a, const JobSpec *b) {
            if (a->priority != b->priority)
                return a->priority > b->priority;
            if (a->arrival != b->arrival)
                return a->arrival < b->arrival;
            return a->id < b->id;
        });
}

std::optional<Placement>
AdmissionController::tryAdmit(const JobSpec &job,
                              PlacementAllocator &allocator,
                              const CongestionQuery &congested,
                              bool fabric_idle)
{
    std::optional<Placement> placement =
        allocator.tryAllocate(job.gpus);
    if (!placement) {
        _stats.inc("admission.deferred_capacity");
        return std::nullopt;
    }

    // Sharing seats on a plane whose port group is still backed up
    // buys queueing, not progress: undo the allocation and wait for
    // the monitor to clear the plane. shareCount > 1 is the sharing
    // signal — a plane all to ourselves is fine even if its EWMA has
    // not decayed yet.
    if (_policy.deferOnCongestion && placement->shareCount > 1
        && congested) {
        bool blocked = false;
        for (const int plane : placement->planes)
            blocked = blocked || congested(plane);
        if (blocked && !fabric_idle) {
            allocator.release(*placement);
            _stats.inc("admission.deferred_congestion");
            return std::nullopt;
        }
        if (blocked)
            _stats.inc("admission.forced");
    }

    _stats.inc("admission.admitted");
    return placement;
}

} // namespace proact::fleet
