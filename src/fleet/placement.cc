#include "fleet/placement.hh"

#include "sim/logging.hh"

#include <algorithm>

namespace proact::fleet {

PlacementAllocator::PlacementAllocator(const PlatformSpec &platform,
                                       PlacementMode mode,
                                       int max_tenants_per_plane)
    : _mode(mode),
      _maxTenantsPerPlane(mode == PlacementMode::Disjoint
                              ? 1
                              : max_tenants_per_plane)
{
    if (platform.numGpus < 1)
        fatalError("PlacementAllocator: platform has no GPUs");
    if (_maxTenantsPerPlane < 1)
        fatalError("PlacementAllocator: tenant cap must be positive");

    // Baseboard-sized planes on chassis-scale machines; smaller
    // platforms are a single plane (their fabric has no disjoint
    // port groups to carve). Multi-node platforms keep every plane
    // inside one node — a plane spanning the network tier would hand
    // a single tenant's all-to-all traffic to the much slower
    // inter-node links — so the plane size is the baseboard when it
    // tiles the node exactly and the whole node otherwise, keeping
    // the uniform gpu / _gpusPerPlane arithmetic intact.
    if (platform.fabric.multiNode()) {
        const int per_node = platform.fabric.gpusPerNode;
        _gpusPerPlane = per_node % dgx2GpusPerBaseboard == 0
            ? dgx2GpusPerBaseboard
            : per_node;
    } else {
        _gpusPerPlane = platform.numGpus > dgx2GpusPerBaseboard
            ? dgx2GpusPerBaseboard
            : platform.numGpus;
    }
    for (int first = 0; first < platform.numGpus;
         first += _gpusPerPlane) {
        Plane plane;
        plane.firstGpu = first;
        plane.busy.assign(
            static_cast<std::size_t>(
                std::min(_gpusPerPlane, platform.numGpus - first)),
            false);
        plane.quarantined.assign(plane.busy.size(), false);
        _planes.push_back(std::move(plane));
    }
}

std::optional<Placement>
PlacementAllocator::tryAllocate(int gpus)
{
    if (gpus < 1 || gpus > _gpusPerPlane)
        return std::nullopt;

    // Least-loaded plane first so tenants spread before they share;
    // plane id breaks ties so the scan order is deterministic.
    std::vector<int> order(_planes.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<int>(i);
    std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
        return _planes[static_cast<std::size_t>(a)].tenants
            < _planes[static_cast<std::size_t>(b)].tenants;
    });

    for (const int p : order) {
        Plane &plane = _planes[static_cast<std::size_t>(p)];
        if (plane.tenants >= _maxTenantsPerPlane)
            continue;
        if (freeGpusOnPlane(p) < gpus)
            continue;

        Placement placement;
        for (std::size_t g = 0;
             g < plane.busy.size()
             && placement.gpus.size() < static_cast<std::size_t>(gpus);
             ++g) {
            if (plane.busy[g] || plane.quarantined[g])
                continue;
            plane.busy[g] = true;
            placement.gpus.push_back(plane.firstGpu
                                     + static_cast<int>(g));
        }
        ++plane.tenants;
        placement.planes = {p};
        placement.shareCount = plane.tenants;
        return placement;
    }
    return std::nullopt;
}

void
PlacementAllocator::release(const Placement &placement)
{
    for (const int gpu : placement.gpus) {
        const int p = gpu / _gpusPerPlane;
        Plane &plane = _planes.at(static_cast<std::size_t>(p));
        const auto slot =
            static_cast<std::size_t>(gpu - plane.firstGpu);
        if (!plane.busy.at(slot))
            fatalError("PlacementAllocator: double release of gpu",
                       gpu);
        plane.busy[slot] = false;
    }
    for (const int p : placement.planes) {
        Plane &plane = _planes.at(static_cast<std::size_t>(p));
        if (plane.tenants < 1)
            fatalError("PlacementAllocator: tenant underflow on "
                       "plane ", p);
        --plane.tenants;
    }
}

int
PlacementAllocator::tenantsOnPlane(int plane) const
{
    return _planes.at(static_cast<std::size_t>(plane)).tenants;
}

int
PlacementAllocator::freeGpusOnPlane(int plane) const
{
    const Plane &p = _planes.at(static_cast<std::size_t>(plane));
    int free = 0;
    for (std::size_t g = 0; g < p.busy.size(); ++g)
        free += (p.busy[g] || p.quarantined[g]) ? 0 : 1;
    return free;
}

void
PlacementAllocator::quarantine(int gpu)
{
    const int p = gpu / _gpusPerPlane;
    if (p < 0 || p >= numPlanes())
        fatalError("PlacementAllocator: quarantine of unknown gpu",
                   gpu);
    Plane &plane = _planes[static_cast<std::size_t>(p)];
    plane.quarantined.at(
        static_cast<std::size_t>(gpu - plane.firstGpu)) = true;
}

bool
PlacementAllocator::isQuarantined(int gpu) const
{
    const int p = gpu / _gpusPerPlane;
    if (p < 0 || p >= numPlanes())
        return false;
    const Plane &plane = _planes[static_cast<std::size_t>(p)];
    return plane.quarantined.at(
        static_cast<std::size_t>(gpu - plane.firstGpu));
}

int
PlacementAllocator::maxAllocatableGpus() const
{
    int best = 0;
    for (const Plane &plane : _planes) {
        int capacity = 0;
        for (const bool q : plane.quarantined)
            capacity += q ? 0 : 1;
        best = std::max(best, capacity);
    }
    return best;
}

int
PlacementAllocator::quarantinedGpus() const
{
    int total = 0;
    for (const Plane &plane : _planes) {
        for (const bool q : plane.quarantined)
            total += q ? 1 : 0;
    }
    return total;
}

std::pair<int, int>
PlacementAllocator::planeRepLink(int plane) const
{
    const Plane &p = _planes.at(static_cast<std::size_t>(plane));
    if (p.busy.size() < 2) {
        // Single-GPU plane: no intra-plane link exists; point at the
        // first cross-plane pair instead.
        return {p.firstGpu, p.firstGpu == 0 ? 1 : 0};
    }
    return {p.firstGpu, p.firstGpu + 1};
}

} // namespace proact::fleet
