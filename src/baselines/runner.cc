#include "baselines/runner.hh"

#include "sim/joiner.hh"
#include "sim/logging.hh"

#include <algorithm>
#include <vector>

namespace proact {

namespace {

/**
 * Serial host-side cost of one cudaMemcpyPeer issue beyond the base
 * API call: returning to the host program and synchronizing before
 * the DMA engine can be programmed (paper Sec. II-B). Paid per copy
 * on the single host thread, which is why bulk duplication scales
 * poorly with GPU count (N*(N-1) copies per iteration).
 */
constexpr Tick dmaHostSyncCost = 8 * ticksPerMicrosecond;

} // namespace

void
launchPlainKernels(MultiGpuSystem &system, const Phase &phase,
                   EventQueue::Callback on_all_done)
{
    const int n = system.numGpus();
    if (static_cast<int>(phase.perGpu.size()) != n)
        fatalError("launchPlainKernels: phase describes ",
                   phase.perGpu.size(), " GPUs, system has ", n);

    auto &eq = system.eventQueue();
    auto joiner = Joiner::make(n, std::move(on_all_done));

    for (int g = 0; g < n; ++g) {
        KernelLaunch launch;
        launch.desc = phase.perGpu[g].kernel;
        launch.onComplete = Joiner::arrival(joiner);

        const Tick issue = system.host().issue();
        eq.schedule(issue, [&system, g, launch] {
            system.gpu(g).launch(launch);
        });
    }
}

Tick
IdealRuntime::run(Workload &workload)
{
    if (workload.numGpus() != _system.numGpus())
        fatalError("IdealRuntime: workload set up for ",
                   workload.numGpus(), " GPUs, system has ",
                   _system.numGpus());

    const Tick start = _system.now();
    for (int iter = 0; iter < workload.numIterations(); ++iter) {
        const Phase phase = workload.phase(iter);
        launchPlainKernels(_system, phase, nullptr);
        _system.eventQueue().run();
    }
    return _system.now() - start;
}

Tick
BulkMemcpyRuntime::run(Workload &workload)
{
    if (workload.numGpus() != _system.numGpus())
        fatalError("BulkMemcpyRuntime: workload set up for ",
                   workload.numGpus(), " GPUs, system has ",
                   _system.numGpus());

    const Tick start = _system.now();
    for (int iter = 0; iter < workload.numIterations(); ++iter) {
        const Phase phase = workload.phase(iter);
        runPhase(phase);
    }
    _stats.set("copy_ticks", static_cast<double>(_copyTicks));
    return _system.now() - start;
}

void
BulkMemcpyRuntime::runPhase(const Phase &phase)
{
    auto &eq = _system.eventQueue();
    const int n = _system.numGpus();

    Tick kernels_done = 0;
    Tick last_delivery = 0;

    launchPlainKernels(_system, phase, [&] {
        kernels_done = eq.curTick();
        if (n == 1)
            return;

        // Bulk synchronization: only now does the host program the
        // DMA engines to duplicate every partition everywhere.
        for (int src = 0; src < n; ++src) {
            const std::uint64_t bytes =
                phase.perGpu[src].totalBytesProduced();
            for (int dst = 0; dst < n; ++dst) {
                if (dst == src)
                    continue;
                const Tick issue =
                    _system.host().issue(dmaHostSyncCost);
                _stats.inc("memcpy_calls");
                _stats.inc("memcpy_bytes", static_cast<double>(bytes));
                _system.dma(src).copyToPeer(
                    dst, bytes,
                    [&] { last_delivery = eq.curTick(); }, issue);
            }
        }
    });

    eq.run();

    if (last_delivery > kernels_done)
        _copyTicks += last_delivery - kernels_done;
}

Tick
UnifiedMemoryRuntime::run(Workload &workload)
{
    if (workload.numGpus() != _system.numGpus())
        fatalError("UnifiedMemoryRuntime: workload set up for ",
                   workload.numGpus(), " GPUs, system has ",
                   _system.numGpus());

    auto &eq = _system.eventQueue();
    const int n = _system.numGpus();
    const TrafficProfile traffic = workload.traffic();

    // Best-effort hinting (Sec. IV-B): prefetch + overlap for
    // sequential access; the fault path is unavoidable for sporadic
    // accesses even with hand tuning.
    UmHints hints;
    hints.prefetch = traffic.sequentialAccess;
    hints.readDuplicate = false;
    if (_hintsForced)
        hints = _forcedHints;

    const Tick start = _system.now();

    // Region layout: concatenated per-GPU partitions, sized from the
    // first iteration (our workloads keep partition sizes constant).
    const Phase first = workload.phase(0);
    std::vector<std::uint64_t> offsets(n, 0);
    std::uint64_t region_bytes = 0;
    for (int g = 0; g < n; ++g) {
        offsets[g] = region_bytes;
        region_bytes += first.perGpu[g].totalBytesProduced();
    }
    UmDriver driver(_system, std::max<std::uint64_t>(1, region_bytes));

    for (int iter = 0; iter < workload.numIterations(); ++iter) {
        const Phase phase = workload.phase(iter);

        // Pull the peer partitions produced last iteration while the
        // kernels run; the iteration ends when both the compute and
        // the migrations have finished.
        int outstanding = 1; // launchPlainKernels fires exactly once.

        launchPlainKernels(_system, phase, [&] { --outstanding; });

        if (iter > 0 && n > 1) {
            for (int g = 0; g < n; ++g) {
                for (int p = 0; p < n; ++p) {
                    if (p == g)
                        continue;
                    const std::uint64_t bytes =
                        phase.perGpu[p].totalBytesProduced();
                    if (bytes == 0)
                        continue;
                    ++outstanding;
                    _stats.inc("um_accesses");
                    driver.access(g, p, offsets[p], bytes,
                                  traffic.sequentialAccess, hints,
                                  _system.now(),
                                  [&] { --outstanding; });
                }
            }
        }

        eq.run();

        if (outstanding != 0)
            panicError("UnifiedMemoryRuntime: phase did not drain");

        // Producer writes invalidate peer replicas for next iter.
        for (int g = 0; g < n; ++g) {
            driver.producerWrote(
                g, offsets[g],
                phase.perGpu[g].totalBytesProduced());
        }
    }

    _stats.merge(driver.stats);
    return _system.now() - start;
}

} // namespace proact
