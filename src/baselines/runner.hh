/**
 * @file
 * Baseline execution paradigms the paper compares PROACT against
 * (Sec. IV-B): bulk cudaMemcpy duplication, Unified Memory with
 * best-effort hints, and the infinite-interconnect-bandwidth limit
 * study. All implement the Runtime interface so harnesses can swap
 * paradigms freely.
 */

#ifndef PROACT_BASELINES_RUNNER_HH
#define PROACT_BASELINES_RUNNER_HH

#include "memory/um_driver.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "system/multi_gpu_system.hh"
#include "workloads/workload.hh"

#include <memory>
#include <string>

namespace proact {

/**
 * Launch every GPU's plain (uninstrumented) kernel for one phase,
 * serializing the launch calls on the host.
 *
 * @param on_all_done Fires when the last kernel retires.
 */
void launchPlainKernels(MultiGpuSystem &system, const Phase &phase,
                        EventQueue::Callback on_all_done);

/**
 * Infinite interconnect bandwidth limit (paper Sec. IV-B): kernels
 * run, data movement is free. On a 1-GPU system this doubles as the
 * single-GPU baseline all speedups are normalized to.
 */
class IdealRuntime : public Runtime
{
  public:
    explicit IdealRuntime(MultiGpuSystem &system) : _system(system) {}

    Tick run(Workload &workload) override;
    std::string name() const override { return "Infinite-BW"; }

  private:
    MultiGpuSystem &_system;
};

/**
 * Bulk-synchronous cudaMemcpy duplication: each iteration's producer
 * kernels fully complete, then the host issues peer-to-peer DMA
 * copies replicating every partition to every other GPU; the next
 * iteration starts when the last copy lands. No compute/transfer
 * overlap — the paradigm's defining cost.
 */
class BulkMemcpyRuntime : public Runtime
{
  public:
    explicit BulkMemcpyRuntime(MultiGpuSystem &system)
        : _system(system)
    {}

    Tick run(Workload &workload) override;
    std::string name() const override { return "cudaMemcpy"; }

    /** Time spent in exposed copy sections (Fig. 9 denominator). */
    Tick copyTicks() const { return _copyTicks; }

    const StatSet &stats() const { return _stats; }

  private:
    MultiGpuSystem &_system;
    Tick _copyTicks = 0;
    StatSet _stats;

    void runPhase(const Phase &phase);
};

/**
 * Unified Memory with hand-tuned hints (paper Sec. IV-B): sequential
 * workloads get prefetch hints that overlap migration with compute;
 * sporadic workloads ride the fault path. Pre-Pascal GPUs fall back
 * to legacy wholesale migration automatically.
 */
class UnifiedMemoryRuntime : public Runtime
{
  public:
    explicit UnifiedMemoryRuntime(MultiGpuSystem &system)
        : _system(system)
    {}

    /** Force a hinting strategy instead of the per-traffic default
     * (used by the UM hint ablation). */
    UnifiedMemoryRuntime(MultiGpuSystem &system, UmHints forced_hints)
        : _system(system), _forcedHints(forced_hints),
          _hintsForced(true)
    {}

    Tick run(Workload &workload) override;
    std::string name() const override { return "UnifiedMemory"; }

    const StatSet &stats() const { return _stats; }

  private:
    MultiGpuSystem &_system;
    StatSet _stats;
    UmHints _forcedHints;
    bool _hintsForced = false;
};

} // namespace proact

#endif // PROACT_BASELINES_RUNNER_HH
