#include "sim/trace.hh"

#include <algorithm>
#include <map>

namespace proact {

std::vector<Trace::Span>
Trace::byCategory(const std::string &category) const
{
    std::vector<Span> out;
    for (const auto &span : _spans) {
        if (span.category == category)
            out.push_back(span);
    }
    return out;
}

Tick
Trace::horizon() const
{
    Tick h = 0;
    for (const auto &span : _spans)
        h = std::max(h, span.end);
    return h;
}

void
Trace::dumpCsv(std::ostream &os) const
{
    os << "start_ps,end_ps,category,label\n";
    for (const auto &span : _spans) {
        os << span.start << "," << span.end << "," << span.category
           << "," << span.label << "\n";
    }
}

void
Trace::renderTimeline(std::ostream &os, int columns) const
{
    const Tick h = horizon();
    if (h == 0 || columns <= 0) {
        os << "(empty trace)\n";
        return;
    }

    // Rows keyed by label, in first-appearance order.
    std::vector<std::string> order;
    std::map<std::string, std::string> rows;
    std::size_t widest = 0;
    for (const auto &span : _spans) {
        if (rows.find(span.label) == rows.end()) {
            rows[span.label] = std::string(columns, '.');
            order.push_back(span.label);
            widest = std::max(widest, span.label.size());
        }
        auto &row = rows[span.label];
        const auto lo = static_cast<int>(
            span.start * static_cast<Tick>(columns) / (h + 1));
        const auto hi = static_cast<int>(
            span.end * static_cast<Tick>(columns) / (h + 1));
        for (int c = lo; c <= hi && c < columns; ++c)
            row[c] = '#';
    }

    for (const auto &label : order) {
        os << label;
        os << std::string(widest - label.size() + 2, ' ');
        os << rows[label] << "\n";
    }
    os << std::string(widest + 2, ' ') << "0"
       << std::string(columns - 2, ' ') << "t="
       << secondsFromTicks(h) * 1e6 << "us\n";
}

} // namespace proact
