/**
 * @file
 * Optional span tracing for post-run timeline analysis.
 *
 * Components record named spans (kernel executions, fabric
 * transfers) when a Trace is attached; harnesses render them as
 * timelines (e.g. the paper's Figure 1 paradigm comparison) or dump
 * them as CSV. Tracing is off by default and costs nothing when
 * disabled.
 */

#ifndef PROACT_SIM_TRACE_HH
#define PROACT_SIM_TRACE_HH

#include "sim/types.hh"

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace proact {

/** A recorded span stream. */
class Trace
{
  public:
    struct Span
    {
        Tick start = 0;
        Tick end = 0;
        std::string category; ///< e.g. "kernel", "transfer".
        std::string label;    ///< e.g. "gpu0.jacobi_sweep".
    };

    /** Record one completed span. */
    void
    record(Tick start, Tick end, std::string category,
           std::string label)
    {
        _spans.push_back(Span{start, end, std::move(category),
                              std::move(label)});
    }

    const std::vector<Span> &spans() const { return _spans; }
    std::size_t size() const { return _spans.size(); }
    bool empty() const { return _spans.empty(); }
    void clear() { _spans.clear(); }

    /** Spans of one category, in recording order. */
    std::vector<Span> byCategory(const std::string &category) const;

    /** Latest end tick over all spans (0 when empty). */
    Tick horizon() const;

    /** Dump as CSV: start_ps,end_ps,category,label. */
    void dumpCsv(std::ostream &os) const;

    /**
     * Render an ASCII timeline: one row per distinct label, '#'
     * cells where a span of that label is active. @p columns sets
     * the horizontal resolution.
     */
    void renderTimeline(std::ostream &os, int columns = 72) const;

  private:
    std::vector<Span> _spans;
};

} // namespace proact

#endif // PROACT_SIM_TRACE_HH
