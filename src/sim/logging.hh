/**
 * @file
 * Error-reporting helpers in the gem5 idiom.
 *
 * fatal() ends the process for user errors (bad configuration);
 * panic() aborts for internal invariant violations; warn()/inform()
 * print without stopping. In library (non-process-owning) contexts the
 * throwing variants fatalError()/panicError() are preferred — the
 * process-terminating macros exist for the standalone binaries.
 */

#ifndef PROACT_SIM_LOGGING_HH
#define PROACT_SIM_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace proact {

/** Thrown for user-caused misconfiguration (fatal() equivalent). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error("fatal: " + what)
    {}
};

/** Thrown for internal invariant violations (panic() equivalent). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what)
        : std::logic_error("panic: " + what)
    {}
};

/** Raise a FatalError with streamed message parts. */
template <typename... Args>
[[noreturn]] void
fatalError(const Args &...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    throw FatalError(oss.str());
}

/** Raise a PanicError with streamed message parts. */
template <typename... Args>
[[noreturn]] void
panicError(const Args &...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    throw PanicError(oss.str());
}

/** Print a warning to stderr (never stops the run). */
void warn(const std::string &message);

/** Print an informational message to stderr. */
void inform(const std::string &message);

/** Globally silence warn()/inform() (tests use this). */
void setQuiet(bool quiet);

} // namespace proact

#endif // PROACT_SIM_LOGGING_HH
