/**
 * @file
 * Lightweight named-statistics containers.
 *
 * Components accumulate counters and distributions into a StatSet;
 * benchmark harnesses read them back by name to print the paper's
 * tables. A Histogram records value distributions (e.g. remote-store
 * granularities) with power-of-two bucketing.
 */

#ifndef PROACT_SIM_STATS_HH
#define PROACT_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace proact {

/**
 * Ordered map of named double-valued statistics.
 *
 * Reads of absent names return 0 so callers need not pre-register.
 */
class StatSet
{
  public:
    /** Add @p delta (default 1) to the named statistic. */
    void
    inc(const std::string &name, double delta = 1.0)
    {
        _values[name] += delta;
    }

    /** Overwrite the named statistic. */
    void set(const std::string &name, double value)
    {
        _values[name] = value;
    }

    /** Track the maximum seen so far. */
    void
    max(const std::string &name, double value)
    {
        auto it = _values.find(name);
        if (it == _values.end() || value > it->second)
            _values[name] = value;
    }

    /** Value of the named statistic, 0 when never touched. */
    double
    get(const std::string &name) const
    {
        auto it = _values.find(name);
        return it == _values.end() ? 0.0 : it->second;
    }

    bool
    has(const std::string &name) const
    {
        return _values.count(name) != 0;
    }

    const std::map<std::string, double> &all() const { return _values; }

    void clear() { _values.clear(); }

    /** Merge another set by summation (for aggregating per-GPU sets). */
    void
    merge(const StatSet &other)
    {
        for (const auto &[k, v] : other._values)
            _values[k] += v;
    }

    /** Pretty-print as "name = value" lines with optional prefix. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

  private:
    std::map<std::string, double> _values;
};

/**
 * Power-of-two bucketed histogram for byte-granularity distributions.
 *
 * Bucket i holds samples in [2^i, 2^(i+1)); bucket 0 also holds 0.
 */
class Histogram
{
  public:
    void record(std::uint64_t value, std::uint64_t weight = 1);

    std::uint64_t samples() const { return _samples; }
    std::uint64_t total() const { return _total; }
    double mean() const;
    std::uint64_t minValue() const { return _min; }
    std::uint64_t maxValue() const { return _max; }

    /** Count in the bucket covering [2^i, 2^(i+1)). */
    std::uint64_t bucket(std::size_t i) const;
    std::size_t numBuckets() const { return _buckets.size(); }

    void clear();

    /** Fold another histogram in (for aggregating per-GPU lanes). */
    void merge(const Histogram &other);

    void dump(std::ostream &os, const std::string &label = "") const;

  private:
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _samples = 0;
    std::uint64_t _total = 0;
    std::uint64_t _min = ~std::uint64_t(0);
    std::uint64_t _max = 0;
};

} // namespace proact

#endif // PROACT_SIM_STATS_HH
