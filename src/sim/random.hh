/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Workload generators (R-MAT graphs, SGD sampling) must be
 * reproducible across runs and platforms, so we use an explicit
 * SplitMix64/xoshiro256** stack instead of std::default_random_engine
 * (whose algorithm is implementation-defined).
 */

#ifndef PROACT_SIM_RANDOM_HH
#define PROACT_SIM_RANDOM_HH

#include <cstdint>

namespace proact {

/**
 * xoshiro256** generator seeded via SplitMix64.
 *
 * Satisfies UniformRandomBitGenerator, so it also plugs into
 * <random> distributions when needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 expansion of the seed into the xoshiro state.
        std::uint64_t x = seed;
        for (auto &s : _state) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            s = z ^ (z >> 31);
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    result_type
    operator()()
    {
        const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
        const std::uint64_t t = _state[1] << 17;
        _state[2] ^= _state[0];
        _state[3] ^= _state[1];
        _state[1] ^= _state[2];
        _state[0] ^= _state[3];
        _state[2] ^= t;
        _state[3] = rotl(_state[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded sampling.
        __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            const std::uint64_t threshold = (-bound) % bound;
            while (lo < threshold) {
                m = static_cast<__uint128_t>((*this)()) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t _state[4];
};

/**
 * Derive an independent per-stream seed from a campaign seed and a
 * stable stream index (SplitMix64 finalizer over the mixed pair).
 *
 * Seeded campaigns should give every case/link/worker its own stream
 * via deriveSeed(campaign, index) instead of consuming draws from one
 * shared generator in iteration order: appending a new case then
 * leaves every existing stream — and its golden replay — untouched.
 */
constexpr std::uint64_t
deriveSeed(std::uint64_t seed, std::uint64_t stream)
{
    std::uint64_t z =
        seed + (stream + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace proact

#endif // PROACT_SIM_RANDOM_HH
