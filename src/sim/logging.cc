#include "sim/logging.hh"

#include <iostream>

namespace proact {

namespace {
bool quietMode = false;
} // namespace

void
setQuiet(bool quiet)
{
    quietMode = quiet;
}

void
warn(const std::string &message)
{
    if (!quietMode)
        std::cerr << "warn: " << message << "\n";
}

void
inform(const std::string &message)
{
    if (!quietMode)
        std::cerr << "info: " << message << "\n";
}

} // namespace proact
