/**
 * @file
 * Serializing bandwidth resource.
 *
 * A Channel models any component that moves bytes at a finite rate and
 * services requests in FIFO order: one direction of an inter-GPU link,
 * a DMA engine, a GPU's HBM interface, or the L2 atomic unit (where
 * "bytes" become atomic operations). A request occupies the channel
 * for payload/rate and is delivered an additional fixed latency later;
 * latency is pipelined (it delays delivery but does not add occupancy).
 */

#ifndef PROACT_SIM_CHANNEL_HH
#define PROACT_SIM_CHANNEL_HH

#include "sim/event_queue.hh"
#include "sim/small_fn.hh"
#include "sim/types.hh"

#include <cstdint>
#include <deque>
#include <string>

namespace proact {

/**
 * FIFO rate-limited resource with pipelined delivery latency.
 *
 * Occupancy accounting ("busy ticks") lets callers compute utilization,
 * and separate wire/payload byte counters let the interconnect report
 * goodput (useful payload over total wire traffic).
 */
class Channel
{
  public:
    /** Identifies one live submission while rebooking is enabled. */
    using BookingId = std::uint64_t;

    /**
     * Notified after a booking's service end moved (rebooking).
     * Small-buffer storage, same as event callbacks: rebooking sits
     * on the delivery hot path and must not allocate per booking.
     */
    using RebookListener = SmallFn<void(BookingId, Tick)>;

    /**
     * Per-submission timing breakdown. The gap between @c enqueued and
     * @c start is time the request spent queued behind other flows at
     * this resource; @c serviceEnd - @c start is the wire service time
     * at the channel's effective (possibly fault-scaled) rate. The
     * health layer uses the two to attribute slow deliveries to
     * congestion vs. genuine link degradation.
     */
    struct Timing
    {
        Tick enqueued;   ///< max(now, not_before): earliest legal start.
        Tick start;      ///< Actual service start (dequeue).
        Tick serviceEnd; ///< Service end (excl. delivery latency).
        Tick delivered;  ///< serviceEnd + latency.

        /** Ticks spent waiting behind other flows in the FIFO. */
        Tick queueDelay() const { return start - enqueued; }
        /** Ticks of wire occupancy for this request. */
        Tick serviceTicks() const { return serviceEnd - start; }
    };

    /**
     * @param eq Event queue driving the simulation.
     * @param name Diagnostic name (appears in stats dumps).
     * @param bytes_per_sec Service rate.
     * @param latency Pipelined delivery latency added after service.
     */
    Channel(EventQueue &eq, std::string name, double bytes_per_sec,
            Tick latency = 0);

    /**
     * Enqueue a transfer.
     *
     * The transfer begins at max(now, busyUntil()), occupies the
     * channel for wire_bytes/rate, and @p on_delivered (if any) fires
     * at occupancy end plus the channel latency.
     *
     * @param wire_bytes Bytes of channel occupancy (protocol bytes).
     * @param payload_bytes Useful bytes carried (for goodput stats).
     * @param on_delivered Optional completion callback.
     * @return Absolute tick of delivery.
     */
    Tick submit(std::uint64_t wire_bytes, std::uint64_t payload_bytes,
                EventQueue::Callback on_delivered = nullptr);

    /**
     * Enqueue a transfer that may not begin before @p not_before.
     *
     * Used to book multi-hop paths (egress -> core -> ingress)
     * synchronously: each hop is booked to start no earlier than the
     * previous hop's completion, yielding a deterministic end-to-end
     * delivery tick without callback chaining.
     */
    Tick submitAfter(Tick not_before, std::uint64_t wire_bytes,
                     std::uint64_t payload_bytes,
                     EventQueue::Callback on_delivered = nullptr);

    /**
     * Like submitAfter, but returns the full timing breakdown
     * (enqueue/dequeue/service-end/delivery stamps) instead of just
     * the delivery tick. This is the fabric's entry point: it needs
     * the queueing/service split to build a DeliverySample.
     */
    Timing submitTimed(Tick not_before, std::uint64_t wire_bytes,
                       std::uint64_t payload_bytes,
                       EventQueue::Callback on_delivered = nullptr);

    /** First tick at which a new request could begin service. */
    Tick busyUntil() const { return _busyUntil; }

    /** Start tick a submitAfter(@p not_before, ...) would get now. */
    Tick nextStart(Tick not_before) const;

    /** Whether a request submitted now would queue behind others. */
    bool busy() const { return _busyUntil > _eq.curTick(); }

    const std::string &name() const { return _name; }

    /** Effective service rate (nominal rate x fault scale). */
    double rate() const { return _nominalRate * _rateScale; }

    /** Healthy service rate, unaffected by fault scaling. */
    double nominalRate() const { return _nominalRate; }

    /** Change the nominal rate; affects only future submissions. */
    void setRate(double bytes_per_sec);

    /**
     * Scale the effective rate without forgetting the nominal one
     * (fault injection: a degraded link runs at scale x nominal until
     * the episode ends and the scale returns to 1.0). Affects only
     * future submissions.
     */
    void setRateScale(double scale);

    double rateScale() const { return _rateScale; }

    /**
     * Track live bookings so a rate-scale change mid-flight re-times
     * the remaining service of already-submitted transfers (and shifts
     * queued ones) instead of honoring the submission-tick rate. Off
     * by default: booking tracking costs memory and the fault model's
     * original submission-rate semantics are often what a test wants.
     */
    void setRebookable(bool on);

    bool rebookable() const { return _rebookable; }

    /** Observer of booking moves (nullptr disables). */
    void setRebookListener(RebookListener listener)
    {
        _rebookListener = std::move(listener);
    }

    /**
     * Booking id assigned to the most recent submit while rebooking
     * is enabled (0 when rebooking is off).
     */
    BookingId lastBookingId() const { return _lastBookingId; }

    /** Fixed post-service delivery latency. */
    Tick latency() const { return _latency; }
    void setLatency(Tick latency) { _latency = latency; }

    /** @{ @name Accumulated statistics */
    std::uint64_t numTransfers() const { return _numTransfers; }
    std::uint64_t wireBytes() const { return _wireBytes; }
    std::uint64_t payloadBytes() const { return _payloadBytes; }
    Tick busyTicks() const { return _busyTicks; }
    /** @} */

    /** Fraction of [0, horizon] the channel spent servicing. */
    double utilization(Tick horizon) const;

    /** Payload/wire byte ratio so far (1.0 when idle). */
    double goodput() const;

    /** Zero all statistics (rate/latency unchanged). */
    void resetStats();

  private:
    /** One live submission, remembered only while rebookable. */
    struct Booking
    {
        BookingId id;
        Tick notBefore;    ///< Earliest permissible service start.
        Tick start;        ///< Current service start.
        Tick serviceEnd;   ///< Current service end (excl. latency).
        EventId event;     ///< Pending delivery event (0 if none).
        EventQueue::Callback callback; ///< Re-scheduled on rebook.
    };

    EventQueue &_eq;
    std::string _name;
    double _nominalRate;
    double _rateScale = 1.0;
    Tick _latency;

    Tick _busyUntil = 0;
    std::uint64_t _numTransfers = 0;
    std::uint64_t _wireBytes = 0;
    std::uint64_t _payloadBytes = 0;
    Tick _busyTicks = 0;

    bool _rebookable = false;
    BookingId _nextBookingId = 1;
    BookingId _lastBookingId = 0;
    std::deque<Booking> _bookings; ///< FIFO by service start.
    RebookListener _rebookListener;

    /** Drop bookings whose service already finished. */
    void pruneBookings();

    /** Re-time live bookings after the rate moved old -> new. */
    void retimeBookings(double old_rate, double new_rate);
};

} // namespace proact

#endif // PROACT_SIM_CHANNEL_HH
