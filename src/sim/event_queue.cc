#include "sim/event_queue.hh"

#include <cassert>
#include <stdexcept>

namespace proact {

EventId
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    if (when < _curTick)
        throw std::logic_error("EventQueue: scheduling into the past");

    auto entry = std::make_shared<Entry>();
    entry->when = when;
    entry->priority = priority;
    entry->seq = _nextSeq++;
    entry->id = _nextId++;
    entry->cb = std::move(cb);

    _queue.push(entry);
    _pendingIndex.emplace(entry->id, entry);
    ++_liveEvents;
    return entry->id;
}

bool
EventQueue::deschedule(EventId id)
{
    auto it = _pendingIndex.find(id);
    if (it == _pendingIndex.end())
        return false;
    it->second->cancelled = true;
    _pendingIndex.erase(it);
    assert(_liveEvents > 0);
    --_liveEvents;
    return true;
}

bool
EventQueue::runNext()
{
    while (!_queue.empty()) {
        auto entry = _queue.top();
        _queue.pop();
        if (entry->cancelled)
            continue;

        assert(entry->when >= _curTick);
        _curTick = entry->when;
        --_liveEvents;
        ++_dispatched;
        _pendingIndex.erase(entry->id);

        // Move the callback out so the entry can be freed even if the
        // callback reschedules heavily.
        Callback cb = std::move(entry->cb);
        cb();
        return true;
    }
    return false;
}

void
EventQueue::run()
{
    while (runNext()) {
    }
}

void
EventQueue::runUntil(Tick limit)
{
    while (!_queue.empty()) {
        // Peek past cancelled entries without dispatching.
        auto entry = _queue.top();
        if (entry->cancelled) {
            _queue.pop();
            continue;
        }
        if (entry->when > limit)
            break;
        runNext();
    }
    if (_curTick < limit)
        _curTick = limit;
}

} // namespace proact
