#include "sim/event_queue.hh"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace proact {

namespace {

/** Children per heap node; 4-ary keeps the tree shallow and one
 * parent's children inside a single cache line pair. */
constexpr std::size_t HeapArity = 4;

/** Compaction triggers only past this many tombstones, so small
 * queues never pay the O(n) filter. */
constexpr std::uint64_t CompactMinTombstones = 64;

} // namespace

std::uint32_t
EventQueue::allocSlot()
{
    if (_freeHead != NoIndex) {
        const std::uint32_t slot = _freeHead;
        _freeHead = _slots[slot].nextFree;
        _slots[slot].nextFree = NoIndex;
        return slot;
    }
    _slots.emplace_back();
    return static_cast<std::uint32_t>(_slots.size() - 1);
}

void
EventQueue::freeSlot(std::uint32_t slot)
{
    Slot &s = _slots[slot];
    s.cb = nullptr;
    s.pending = false;
    ++s.gen; // Invalidate every outstanding EventId for this slot.
    s.nextFree = _freeHead;
    _freeHead = slot;
}

void
EventQueue::heapPush(HeapNode node)
{
    _heap.push_back(node);
    std::size_t i = _heap.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) / HeapArity;
        if (!before(_heap[i], _heap[parent]))
            break;
        std::swap(_heap[i], _heap[parent]);
        i = parent;
    }
}

void
EventQueue::heapPop()
{
    _heap.front() = _heap.back();
    _heap.pop_back();
    if (_heap.empty())
        return;

    const std::size_t n = _heap.size();
    std::size_t i = 0;
    for (;;) {
        const std::size_t first = i * HeapArity + 1;
        if (first >= n)
            break;
        std::size_t best = first;
        const std::size_t last = std::min(first + HeapArity, n);
        for (std::size_t c = first + 1; c < last; ++c) {
            if (before(_heap[c], _heap[best]))
                best = c;
        }
        if (!before(_heap[best], _heap[i]))
            break;
        std::swap(_heap[i], _heap[best]);
        i = best;
    }
}

void
EventQueue::heapify()
{
    if (_heap.size() <= 1)
        return;
    const std::size_t n = _heap.size();
    for (std::size_t i = (n - 2) / HeapArity + 1; i-- > 0;) {
        std::size_t j = i;
        for (;;) {
            const std::size_t first = j * HeapArity + 1;
            if (first >= n)
                break;
            std::size_t best = first;
            const std::size_t last = std::min(first + HeapArity, n);
            for (std::size_t c = first + 1; c < last; ++c) {
                if (before(_heap[c], _heap[best]))
                    best = c;
            }
            if (!before(_heap[best], _heap[j]))
                break;
            std::swap(_heap[j], _heap[best]);
            j = best;
        }
    }
}

void
EventQueue::compact()
{
    auto out = _heap.begin();
    for (const HeapNode &node : _heap) {
        if (isLive(node.id))
            *out++ = node;
    }
    _heap.erase(out, _heap.end());
    heapify();

    assert(_heap.size() == _liveEvents); // Debug recount of the slab.
    _tombstones = 0;
    assertBookkeeping();
}

EventId
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    if (when < _curTick)
        throw std::logic_error("EventQueue: scheduling into the past");

    const std::uint32_t slot = allocSlot();
    Slot &s = _slots[slot];
    s.cb = std::move(cb);
    s.pending = true;

    const EventId id = makeId(slot, s.gen);
    heapPush(HeapNode{when, _nextSeq++, id,
                      static_cast<std::int32_t>(priority)});
    ++_liveEvents;
    assertBookkeeping();
    return id;
}

bool
EventQueue::deschedule(EventId id)
{
    if (!isLive(id))
        return false;

    freeSlot(slotOf(id));
    assert(_liveEvents > 0);
    --_liveEvents;
    ++_tombstones; // The heap node stays behind; pop skips it.

    // Reclaim heap space once the dead outnumber the living — keeps
    // deschedule-heavy phases (retry storms, mass rebooking) from
    // growing the heap without bound.
    if (_tombstones > CompactMinTombstones && _tombstones > _liveEvents)
        compact();

    assertBookkeeping();
    return true;
}

void
EventQueue::skimTombstones()
{
    while (!_heap.empty() && !isLive(_heap.front().id)) {
        heapPop();
        assert(_tombstones > 0);
        --_tombstones;
    }
    assertBookkeeping();
}

Tick
EventQueue::nextEventTick()
{
    skimTombstones();
    return _heap.empty() ? maxTick : _heap.front().when;
}

bool
EventQueue::runNext()
{
    skimTombstones();
    if (_heap.empty())
        return false;

    const HeapNode top = _heap.front();
    heapPop();

    assert(top.when >= _curTick);
    _curTick = top.when;

    const std::uint32_t slot = slotOf(top.id);
    // Move the callback out and retire the slot *before* invoking, so
    // the callback can schedule freely (growing the slab) and even
    // deschedule other events without observing a half-dead entry.
    Callback cb = std::move(_slots[slot].cb);
    freeSlot(slot);
    --_liveEvents;
    ++_dispatched;
    assertBookkeeping();

    cb();
    return true;
}

void
EventQueue::run()
{
    while (runNext()) {
    }
}

void
EventQueue::runUntil(Tick limit)
{
    while (nextEventTick() <= limit) {
        if (!runNext())
            break; // Guards limit == maxTick on an empty queue.
    }
    if (_curTick < limit)
        _curTick = limit;
}

std::uint64_t
EventQueue::runUntilBefore(Tick end)
{
    std::uint64_t ran = 0;
    while (nextEventTick() < end) {
        runNext();
        ++ran;
    }
    return ran;
}

void
EventQueue::advanceTo(Tick tick)
{
    tick = std::min(tick, nextEventTick());
    if (tick > _curTick)
        _curTick = tick;
}

} // namespace proact
