/**
 * @file
 * Discrete-event engine driving the multi-GPU simulator.
 *
 * Every timing-visible action in the system — CTA completion, chunk
 * transfer delivery, DMA completion, polling-agent wakeup, page-fault
 * service — is an event scheduled on a queue. Events at equal ticks
 * are ordered by priority, then by insertion sequence so execution is
 * fully deterministic.
 *
 * The engine is built for throughput (the profiler sweeps hundreds of
 * configurations per application, so simulation speed is a product
 * feature):
 *
 *  - Entries live in a slab: a flat slot vector recycled through a
 *    freelist, no per-event heap allocation and no shared_ptr control
 *    blocks.
 *  - The ready structure is a 4-ary heap of 32-byte plain-old-data
 *    nodes keyed (tick, priority, seq) — shallower than a binary heap
 *    and cache-friendly (a parent's four children share a line).
 *  - EventIds carry a generation counter, so deschedule() is an O(1)
 *    slot probe with no hash map; stale ids (fired, cancelled, or
 *    recycled slots) are rejected by the generation check.
 *  - Cancelled events leave a tombstone node in the heap that is
 *    skipped lazily at pop; when tombstones outnumber live nodes the
 *    heap is compacted in one O(n) filter + heapify pass.
 *  - Callbacks use small-buffer storage (SmallFn) so capturing a few
 *    pointers never allocates.
 */

#ifndef PROACT_SIM_EVENT_QUEUE_HH
#define PROACT_SIM_EVENT_QUEUE_HH

#include "sim/small_fn.hh"
#include "sim/types.hh"

#include <cassert>
#include <cstdint>
#include <vector>

namespace proact {

/**
 * Opaque handle identifying a scheduled event (used to cancel it).
 *
 * Packs (generation << 32) | (slot + 1); value 0 is never issued, so
 * callers can use 0 as "no event". A handle is invalidated the moment
 * its event fires or is descheduled — the slot's generation bumps and
 * any later use of the stale id is a harmless no-op.
 */
using EventId = std::uint64_t;

/**
 * Deterministic discrete-event queue.
 *
 * The queue owns the simulated clock: curTick() advances only when an
 * event is dispatched. Callbacks may schedule further events (including
 * at the current tick) but never in the past.
 */
class EventQueue
{
  public:
    using Callback = SmallFn<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     *
     * @param when Absolute tick; must be >= curTick().
     * @param cb Callback invoked when the event fires.
     * @param priority Lower values run first among same-tick events.
     * @return Handle usable with deschedule().
     */
    EventId schedule(Tick when, Callback cb, int priority = 0);

    /** Schedule @p cb to run @p delay ticks from now. */
    EventId
    scheduleIn(Tick delay, Callback cb, int priority = 0)
    {
        return schedule(_curTick + delay, std::move(cb), priority);
    }

    /**
     * Cancel a pending event. Cancelling an already-fired or unknown
     * event is a harmless no-op.
     * @return true iff the event was pending and is now cancelled.
     */
    bool deschedule(EventId id);

    /** Whether any live (non-cancelled) events remain. */
    bool empty() const { return _liveEvents == 0; }

    /** Number of live pending events. */
    std::uint64_t pendingEvents() const { return _liveEvents; }

    /** Total events dispatched so far. */
    std::uint64_t dispatchedEvents() const { return _dispatched; }

    /** Cancelled entries still occupying heap nodes (tombstones). */
    std::uint64_t tombstones() const { return _tombstones; }

    /**
     * Earliest live event's tick without dispatching it, or maxTick
     * when no live events remain. Pops tombstones off the heap top as
     * a side effect (hence non-const).
     */
    Tick nextEventTick();

    /**
     * Dispatch the single next event.
     * @return true if an event ran, false if the queue was empty.
     */
    bool runNext();

    /** Run until no live events remain. */
    void run();

    /**
     * Run until the clock would pass @p limit; events at exactly
     * @p limit still execute. The clock always ends at >= @p limit,
     * even when the queue drains early.
     */
    void runUntil(Tick limit);

    /**
     * Dispatch every event strictly before @p end, leaving the clock
     * at the last dispatched event (not advanced to @p end). This is
     * the sharded engine's window primitive: events at >= @p end
     * belong to the next lookahead window.
     * @return Number of events dispatched.
     */
    std::uint64_t runUntilBefore(Tick end);

    /**
     * Pull the clock forward to @p tick without dispatching anything,
     * clamped so it never passes the next pending event. The sharded
     * engine floors idle shard clocks at window barriers with this so
     * synchronous cross-object calls made serially between windows
     * (probe bookings, kernel launches) read a sane "now".
     */
    void advanceTo(Tick tick);

  private:
    static constexpr std::uint32_t NoIndex = ~std::uint32_t(0);

    /** Slab slot holding one pending event's callback. */
    struct Slot
    {
        Callback cb;
        std::uint32_t gen = 0;      ///< Bumped when the slot is freed.
        std::uint32_t nextFree = NoIndex; ///< Freelist link when free.
        bool pending = false;
    };

    /** Heap node: ordering key + validating id, no indirection. */
    struct HeapNode
    {
        Tick when;
        std::uint64_t seq;
        EventId id;
        std::int32_t priority;
    };

    static EventId
    makeId(std::uint32_t slot, std::uint32_t gen)
    {
        return (static_cast<EventId>(gen) << 32)
            | static_cast<EventId>(slot + 1);
    }

    static std::uint32_t slotOf(EventId id)
    {
        return static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
    }

    static std::uint32_t genOf(EventId id)
    {
        return static_cast<std::uint32_t>(id >> 32);
    }

    bool
    isLive(EventId id) const
    {
        const std::uint32_t slot = slotOf(id);
        return slot < _slots.size() && _slots[slot].pending
            && _slots[slot].gen == genOf(id);
    }

    /** Strict (tick, priority, seq) ordering. */
    static bool
    before(const HeapNode &a, const HeapNode &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.priority != b.priority)
            return a.priority < b.priority;
        return a.seq < b.seq;
    }

    std::uint32_t allocSlot();
    void freeSlot(std::uint32_t slot);

    void heapPush(HeapNode node);
    void heapPop();
    void heapify();

    /** Drop stale nodes off the heap top; heap top is live after. */
    void skimTombstones();

    /** Filter every tombstone out and re-heapify (O(n)). */
    void compact();

    /**
     * Tombstone bookkeeping can't silently drift: every heap node is
     * either live or an accounted tombstone. Checked (debug builds)
     * on every mutation; compact() additionally recounts the heap.
     */
    void
    assertBookkeeping() const
    {
        assert(_liveEvents + _tombstones == _heap.size());
    }

    std::vector<Slot> _slots;
    std::uint32_t _freeHead = NoIndex;
    std::vector<HeapNode> _heap;

    Tick _curTick = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _liveEvents = 0;
    std::uint64_t _tombstones = 0;
    std::uint64_t _dispatched = 0;
};

} // namespace proact

#endif // PROACT_SIM_EVENT_QUEUE_HH
