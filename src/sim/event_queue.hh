/**
 * @file
 * Discrete-event engine driving the multi-GPU simulator.
 *
 * Every timing-visible action in the system — CTA completion, chunk
 * transfer delivery, DMA completion, polling-agent wakeup, page-fault
 * service — is an event scheduled on a single global queue. Events at
 * equal ticks are ordered by priority, then by insertion sequence so
 * execution is fully deterministic.
 */

#ifndef PROACT_SIM_EVENT_QUEUE_HH
#define PROACT_SIM_EVENT_QUEUE_HH

#include "sim/types.hh"

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

namespace proact {

/** Opaque handle identifying a scheduled event (used to cancel it). */
using EventId = std::uint64_t;

/**
 * Deterministic discrete-event queue.
 *
 * The queue owns the simulated clock: curTick() advances only when an
 * event is dispatched. Callbacks may schedule further events (including
 * at the current tick) but never in the past.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     *
     * @param when Absolute tick; must be >= curTick().
     * @param cb Callback invoked when the event fires.
     * @param priority Lower values run first among same-tick events.
     * @return Handle usable with deschedule().
     */
    EventId schedule(Tick when, Callback cb, int priority = 0);

    /** Schedule @p cb to run @p delay ticks from now. */
    EventId
    scheduleIn(Tick delay, Callback cb, int priority = 0)
    {
        return schedule(_curTick + delay, std::move(cb), priority);
    }

    /**
     * Cancel a pending event. Cancelling an already-fired or unknown
     * event is a harmless no-op.
     * @return true iff the event was pending and is now cancelled.
     */
    bool deschedule(EventId id);

    /** Whether any live (non-cancelled) events remain. */
    bool empty() const { return _liveEvents == 0; }

    /** Number of live pending events. */
    std::uint64_t pendingEvents() const { return _liveEvents; }

    /** Total events dispatched so far. */
    std::uint64_t dispatchedEvents() const { return _dispatched; }

    /**
     * Dispatch the single next event.
     * @return true if an event ran, false if the queue was empty.
     */
    bool runNext();

    /** Run until no live events remain. */
    void run();

    /**
     * Run until the clock would pass @p limit; events at exactly
     * @p limit still execute.
     */
    void runUntil(Tick limit);

  private:
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        EventId id;
        Callback cb;
        bool cancelled = false;
    };

    struct EntryCompare
    {
        bool
        operator()(const std::shared_ptr<Entry> &a,
                   const std::shared_ptr<Entry> &b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            if (a->priority != b->priority)
                return a->priority > b->priority;
            return a->seq > b->seq;
        }
    };

    std::priority_queue<std::shared_ptr<Entry>,
                        std::vector<std::shared_ptr<Entry>>,
                        EntryCompare> _queue;
    std::unordered_map<EventId, std::shared_ptr<Entry>> _pendingIndex;

    Tick _curTick = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _nextId = 1;
    std::uint64_t _liveEvents = 0;
    std::uint64_t _dispatched = 0;
};

} // namespace proact

#endif // PROACT_SIM_EVENT_QUEUE_HH
