/**
 * @file
 * Completion join counter.
 *
 * Multi-GPU phases complete when N independent completions (kernels,
 * transfers) have all arrived; Joiner counts arrivals and fires a
 * callback on the last one. Create via std::make_shared and capture
 * the shared_ptr in each completion callback so it lives until fired.
 */

#ifndef PROACT_SIM_JOINER_HH
#define PROACT_SIM_JOINER_HH

#include "sim/event_queue.hh"
#include "sim/logging.hh"

#include <memory>

namespace proact {

/** Counts @p expected arrivals, then invokes the completion once. */
class Joiner
{
  public:
    Joiner(int expected, EventQueue::Callback on_done)
        : _remaining(expected), _onDone(std::move(on_done))
    {
        if (expected < 0)
            panicError("Joiner: negative arrival count");
        if (expected == 0 && _onDone) {
            // Degenerate join: complete immediately.
            auto done = std::move(_onDone);
            _onDone = nullptr;
            done();
        }
    }

    /** Record one arrival; fires the callback on the last. */
    void
    arrive()
    {
        if (_remaining <= 0)
            panicError("Joiner: more arrivals than expected");
        if (--_remaining == 0 && _onDone) {
            auto done = std::move(_onDone);
            _onDone = nullptr;
            done();
        }
    }

    int remaining() const { return _remaining; }

    /** Convenience: shared joiner whose arrivals capture ownership. */
    static std::shared_ptr<Joiner>
    make(int expected, EventQueue::Callback on_done)
    {
        return std::make_shared<Joiner>(expected, std::move(on_done));
    }

    /** An arrival callback keeping the joiner alive until it fires. */
    static EventQueue::Callback
    arrival(const std::shared_ptr<Joiner> &joiner)
    {
        return [joiner] { joiner->arrive(); };
    }

  private:
    int _remaining;
    EventQueue::Callback _onDone;
};

} // namespace proact

#endif // PROACT_SIM_JOINER_HH
