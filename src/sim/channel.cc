#include "sim/channel.hh"

#include <algorithm>
#include <stdexcept>

namespace proact {

Channel::Channel(EventQueue &eq, std::string name, double bytes_per_sec,
                 Tick latency)
    : _eq(eq), _name(std::move(name)), _nominalRate(bytes_per_sec),
      _latency(latency)
{
    if (bytes_per_sec <= 0.0)
        throw std::invalid_argument("Channel rate must be positive: "
                                    + _name);
}

void
Channel::setRate(double bytes_per_sec)
{
    if (bytes_per_sec <= 0.0)
        throw std::invalid_argument("Channel rate must be positive: "
                                    + _name);
    _nominalRate = bytes_per_sec;
}

void
Channel::setRateScale(double scale)
{
    if (scale <= 0.0 || scale > 1.0)
        throw std::invalid_argument("Channel rate scale must be in "
                                    "(0, 1]: " + _name);
    if (scale == _rateScale)
        return;
    const double old_rate = rate();
    _rateScale = scale;
    if (_rebookable)
        retimeBookings(old_rate, rate());
}

void
Channel::setRebookable(bool on)
{
    _rebookable = on;
    if (!on) {
        _bookings.clear();
        _lastBookingId = 0;
    }
}

void
Channel::pruneBookings()
{
    const Tick now = _eq.curTick();
    while (!_bookings.empty() &&
           _bookings.front().serviceEnd <= now) {
        _bookings.pop_front();
    }
}

void
Channel::retimeBookings(double old_rate, double new_rate)
{
    pruneBookings();
    if (_bookings.empty())
        return;

    const Tick now = _eq.curTick();
    const auto retime = [old_rate, new_rate](Tick ticks) -> Tick {
        if (ticks == 0)
            return 0;
        const auto scaled = static_cast<Tick>(
            static_cast<double>(ticks) * old_rate / new_rate + 0.5);
        return scaled == 0 ? 1 : scaled;
    };

    Tick prev_end = 0;
    for (Booking &b : _bookings) {
        Tick new_start, new_end;
        if (b.start <= now) {
            // In service: the work already done stays done; only the
            // remainder is re-timed at the new rate.
            new_start = b.start;
            new_end = now + retime(b.serviceEnd - now);
        } else {
            // Queued: full service re-timed, start chained behind the
            // re-timed predecessor (but never before its own gate).
            new_start = std::max({b.notBefore, prev_end, now});
            new_end = new_start + retime(b.serviceEnd - b.start);
        }

        const auto old_dur =
            static_cast<std::int64_t>(b.serviceEnd - b.start);
        const auto new_dur =
            static_cast<std::int64_t>(new_end - new_start);
        _busyTicks = static_cast<Tick>(
            static_cast<std::int64_t>(_busyTicks) + new_dur - old_dur);

        b.start = new_start;
        b.serviceEnd = new_end;
        prev_end = new_end;

        if (b.event != 0) {
            _eq.deschedule(b.event);
            b.event = _eq.schedule(new_end + _latency, b.callback);
        }
        if (_rebookListener)
            _rebookListener(b.id, new_end);
    }
    _busyUntil = prev_end;
}

Tick
Channel::submit(std::uint64_t wire_bytes, std::uint64_t payload_bytes,
                EventQueue::Callback on_delivered)
{
    return submitAfter(_eq.curTick(), wire_bytes, payload_bytes,
                       std::move(on_delivered));
}

Tick
Channel::nextStart(Tick not_before) const
{
    return std::max({_eq.curTick(), _busyUntil, not_before});
}

Tick
Channel::submitAfter(Tick not_before, std::uint64_t wire_bytes,
                     std::uint64_t payload_bytes,
                     EventQueue::Callback on_delivered)
{
    return submitTimed(not_before, wire_bytes, payload_bytes,
                       std::move(on_delivered)).delivered;
}

Channel::Timing
Channel::submitTimed(Tick not_before, std::uint64_t wire_bytes,
                     std::uint64_t payload_bytes,
                     EventQueue::Callback on_delivered)
{
    const Tick enqueued = std::max(_eq.curTick(), not_before);
    const Tick start = nextStart(not_before);
    const Tick service = transferTicks(wire_bytes, rate());
    const Tick service_end = start + service;
    const Tick delivered = service_end + _latency;
    const Timing timing{enqueued, start, service_end, delivered};

    _busyUntil = service_end;
    _busyTicks += service;
    _wireBytes += wire_bytes;
    _payloadBytes += payload_bytes;
    ++_numTransfers;

    if (_rebookable) {
        pruneBookings();
        Booking b;
        b.id = _nextBookingId++;
        b.notBefore = not_before;
        b.start = start;
        b.serviceEnd = service_end;
        b.event = 0;
        if (on_delivered) {
            b.callback = std::move(on_delivered);
            b.event = _eq.schedule(delivered, b.callback);
        }
        _lastBookingId = b.id;
        _bookings.push_back(std::move(b));
        return timing;
    }

    if (on_delivered)
        _eq.schedule(delivered, std::move(on_delivered));
    return timing;
}

double
Channel::utilization(Tick horizon) const
{
    if (horizon == 0)
        return 0.0;
    return std::min(1.0, static_cast<double>(_busyTicks)
                             / static_cast<double>(horizon));
}

double
Channel::goodput() const
{
    if (_wireBytes == 0)
        return 1.0;
    return static_cast<double>(_payloadBytes)
        / static_cast<double>(_wireBytes);
}

void
Channel::resetStats()
{
    _numTransfers = 0;
    _wireBytes = 0;
    _payloadBytes = 0;
    _busyTicks = 0;
}

} // namespace proact
