#include "sim/channel.hh"

#include <algorithm>
#include <stdexcept>

namespace proact {

Channel::Channel(EventQueue &eq, std::string name, double bytes_per_sec,
                 Tick latency)
    : _eq(eq), _name(std::move(name)), _nominalRate(bytes_per_sec),
      _latency(latency)
{
    if (bytes_per_sec <= 0.0)
        throw std::invalid_argument("Channel rate must be positive: "
                                    + _name);
}

void
Channel::setRate(double bytes_per_sec)
{
    if (bytes_per_sec <= 0.0)
        throw std::invalid_argument("Channel rate must be positive: "
                                    + _name);
    _nominalRate = bytes_per_sec;
}

void
Channel::setRateScale(double scale)
{
    if (scale <= 0.0 || scale > 1.0)
        throw std::invalid_argument("Channel rate scale must be in "
                                    "(0, 1]: " + _name);
    _rateScale = scale;
}

Tick
Channel::submit(std::uint64_t wire_bytes, std::uint64_t payload_bytes,
                EventQueue::Callback on_delivered)
{
    return submitAfter(_eq.curTick(), wire_bytes, payload_bytes,
                       std::move(on_delivered));
}

Tick
Channel::nextStart(Tick not_before) const
{
    return std::max({_eq.curTick(), _busyUntil, not_before});
}

Tick
Channel::submitAfter(Tick not_before, std::uint64_t wire_bytes,
                     std::uint64_t payload_bytes,
                     EventQueue::Callback on_delivered)
{
    const Tick start = nextStart(not_before);
    const Tick service = transferTicks(wire_bytes, rate());
    const Tick service_end = start + service;
    const Tick delivered = service_end + _latency;

    _busyUntil = service_end;
    _busyTicks += service;
    _wireBytes += wire_bytes;
    _payloadBytes += payload_bytes;
    ++_numTransfers;

    if (on_delivered)
        _eq.schedule(delivered, std::move(on_delivered));
    return delivered;
}

double
Channel::utilization(Tick horizon) const
{
    if (horizon == 0)
        return 0.0;
    return std::min(1.0, static_cast<double>(_busyTicks)
                             / static_cast<double>(horizon));
}

double
Channel::goodput() const
{
    if (_wireBytes == 0)
        return 1.0;
    return static_cast<double>(_payloadBytes)
        / static_cast<double>(_wireBytes);
}

void
Channel::resetStats()
{
    _numTransfers = 0;
    _wireBytes = 0;
    _payloadBytes = 0;
    _busyTicks = 0;
}

} // namespace proact
