/**
 * @file
 * Core time and unit types shared by every simulation component.
 *
 * Simulated time is measured in picoseconds so that single-flit
 * transfers on a 300 GB/s fabric (sub-nanosecond) remain representable
 * as integers. Helper conversion routines keep unit handling in one
 * place; all bandwidths in the code base are expressed in bytes/second.
 */

#ifndef PROACT_SIM_TYPES_HH
#define PROACT_SIM_TYPES_HH

#include <cstdint>

namespace proact {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Ticks per common wall-clock units. */
constexpr Tick ticksPerPicosecond = 1;
constexpr Tick ticksPerNanosecond = 1000;
constexpr Tick ticksPerMicrosecond = 1000 * ticksPerNanosecond;
constexpr Tick ticksPerMillisecond = 1000 * ticksPerMicrosecond;
constexpr Tick ticksPerSecond = 1000 * ticksPerMillisecond;

/** A tick value guaranteed to be later than any scheduled event. */
constexpr Tick maxTick = ~Tick(0);

/** Common byte-size constants. */
constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * KiB;
constexpr std::uint64_t GiB = 1024 * MiB;

/** Convert seconds (double) to ticks, rounding to nearest. */
constexpr Tick
ticksFromSeconds(double seconds)
{
    return static_cast<Tick>(seconds * static_cast<double>(ticksPerSecond)
                             + 0.5);
}

/** Convert ticks to seconds. */
constexpr double
secondsFromTicks(Tick ticks)
{
    return static_cast<double>(ticks)
        / static_cast<double>(ticksPerSecond);
}

/**
 * Time to move @p bytes at @p bytes_per_sec, in ticks (at least 1 tick
 * for any non-zero payload so events always make forward progress).
 */
constexpr Tick
transferTicks(std::uint64_t bytes, double bytes_per_sec)
{
    if (bytes == 0 || bytes_per_sec <= 0.0)
        return 0;
    const double seconds =
        static_cast<double>(bytes) / bytes_per_sec;
    const Tick t = ticksFromSeconds(seconds);
    return t == 0 ? 1 : t;
}

/** Achieved bytes/second for a payload moved in @p ticks. */
constexpr double
bytesPerSecond(std::uint64_t bytes, Tick ticks)
{
    if (ticks == 0)
        return 0.0;
    return static_cast<double>(bytes) / secondsFromTicks(ticks);
}

} // namespace proact

#endif // PROACT_SIM_TYPES_HH
