#include "sim/stats.hh"

#include <bit>
#include <iomanip>

namespace proact {

void
StatSet::dump(std::ostream &os, const std::string &prefix) const
{
    for (const auto &[k, v] : _values)
        os << prefix << k << " = " << v << "\n";
}

void
Histogram::record(std::uint64_t value, std::uint64_t weight)
{
    const std::size_t bucket =
        value == 0 ? 0 : std::bit_width(value) - 1;
    if (bucket >= _buckets.size())
        _buckets.resize(bucket + 1, 0);
    _buckets[bucket] += weight;
    _samples += weight;
    _total += value * weight;
    if (value < _min)
        _min = value;
    if (value > _max)
        _max = value;
}

double
Histogram::mean() const
{
    if (_samples == 0)
        return 0.0;
    return static_cast<double>(_total) / static_cast<double>(_samples);
}

std::uint64_t
Histogram::bucket(std::size_t i) const
{
    return i < _buckets.size() ? _buckets[i] : 0;
}

void
Histogram::merge(const Histogram &other)
{
    if (other._buckets.size() > _buckets.size())
        _buckets.resize(other._buckets.size(), 0);
    for (std::size_t i = 0; i < other._buckets.size(); ++i)
        _buckets[i] += other._buckets[i];
    _samples += other._samples;
    _total += other._total;
    if (other._min < _min)
        _min = other._min;
    if (other._max > _max)
        _max = other._max;
}

void
Histogram::clear()
{
    _buckets.clear();
    _samples = 0;
    _total = 0;
    _min = ~std::uint64_t(0);
    _max = 0;
}

void
Histogram::dump(std::ostream &os, const std::string &label) const
{
    os << label << " (" << _samples << " samples, mean "
       << std::fixed << std::setprecision(1) << mean() << ")\n";
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        if (_buckets[i] == 0)
            continue;
        os << "  [" << (std::uint64_t(1) << i) << ", "
           << (std::uint64_t(1) << (i + 1)) << "): "
           << _buckets[i] << "\n";
    }
    os.unsetf(std::ios::fixed);
}

} // namespace proact
