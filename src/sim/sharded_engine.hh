/**
 * @file
 * Conservative parallel discrete-event engine (PDES).
 *
 * The serial EventQueue caps simulation throughput on large
 * topologies: every CTA completion and chunk delivery on a 256-GPU
 * hierarchical fabric funnels through one heap. ShardedEventEngine
 * shards the event space — one serial EventQueue core per GPU (or per
 * chassis plane) — and executes shards concurrently on a worker pool
 * under a conservative lookahead window:
 *
 *   window = [start, start + lookahead)
 *
 * where @c start is the globally earliest pending event and
 * @c lookahead is the minimum cross-shard latency of the model
 * (typically the minimum link latency). Within a window each shard
 * dispatches its own events in (tick, priority, seq) order; an event
 * that targets *another* shard is not scheduled directly but posted
 * to the source shard's outbox, and all outboxes are merged at the
 * window barrier in a deterministic order:
 *
 *   (when, priority, source shard, source post-sequence)
 *
 * Because cross-shard effects always land at or after the window end
 * (the conservative contract, enforced at post() time), the execution
 * and the merge are independent of worker interleaving: running with
 * 1 worker or N workers produces bit-identical event orders, shard
 * clocks and statistics. That property is the determinism gate the
 * `ctest -L pdes` battery checks.
 *
 * Hot shared structures are per-shard by construction — each shard
 * owns its EventQueue, its StatSet (merged on read), and whatever
 * model state (channels, flying-request maps) the model binds to it —
 * so the parallel path takes no locks outside the window barrier.
 *
 * The model contract:
 *  - Shard-local state is touched only by callbacks running on that
 *    shard's queue.
 *  - Cross-shard interaction goes through post() with a delay of at
 *    least the engine lookahead.
 */

#ifndef PROACT_SIM_SHARDED_ENGINE_HH
#define PROACT_SIM_SHARDED_ENGINE_HH

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace proact {

/**
 * Worker count requested by PROACT_SIM_SHARDS (0/unset/1 =
 * sequential, clamped to [0, 64]). The knob gates every parallel path
 * in the tree — sharded event execution here, parallel profiler
 * sweeps above — and defaults to off so plain runs stay serial.
 */
int envSimShards();

/** Sharded conservative-lookahead event engine. */
class ShardedEventEngine
{
  public:
    struct Options
    {
        /** Shard count (>= 1); one serial event core per shard. */
        int numShards = 1;

        /**
         * Conservative window width; must not exceed the model's
         * minimum cross-shard delay. 0 degenerates to one tick per
         * window (always correct, maximum barrier overhead).
         */
        Tick lookahead = ticksPerMicrosecond;

        /**
         * Worker threads executing shards within a window. 0 = use
         * min(numShards, hardware_concurrency); 1 = sequential (the
         * determinism reference).
         */
        int workers = 1;
    };

    explicit ShardedEventEngine(Options options);
    ShardedEventEngine(const ShardedEventEngine &) = delete;
    ShardedEventEngine &operator=(const ShardedEventEngine &) = delete;
    ~ShardedEventEngine();

    int numShards() const { return static_cast<int>(_shards.size()); }
    Tick lookahead() const { return _opts.lookahead; }
    int workers() const { return _workers; }

    /** Serial event core of shard @p s; schedule shard-local events
     * directly on it (model setup and intra-shard traffic). */
    EventQueue &shard(int s) { return _shards[s]->queue; }

    /** Contention-free per-shard statistics. */
    StatSet &stats(int s) { return _shards[s]->stats; }

    /** Merge-on-read view over every shard's StatSet. */
    StatSet mergedStats() const;

    /**
     * Schedule @p cb on shard @p to at absolute tick @p when from
     * shard @p from. Inside a running window @p when must be >= the
     * window end (the conservative contract) or a PanicError-style
     * logic_error is thrown; at the barrier all posts are merged
     * deterministically by (when, priority, from, fromSeq).
     */
    void post(int from, int to, Tick when, EventQueue::Callback cb,
              int priority = 0);

    /** Run windows until every shard drains and no mail remains. */
    void run();

    /** End (exclusive) of the window currently executing; 0 when no
     * window is in flight. */
    Tick windowEnd() const
    {
        return _windowEnd.load(std::memory_order_relaxed);
    }

    /** Total events dispatched across all shards. */
    std::uint64_t dispatchedEvents() const;

    /** Cross-shard messages delivered at barriers so far. */
    std::uint64_t postedEvents() const { return _posted; }

    /** Lookahead windows executed so far. */
    std::uint64_t windows() const { return _windows; }

    /** Latest shard clock (the engine's notion of "now" between
     * windows; individual shard clocks may trail it). */
    Tick maxShardTick() const;

  private:
    /** One cross-shard message awaiting its window barrier. */
    struct Mail
    {
        Tick when;
        std::int32_t priority;
        std::int32_t from;
        std::int32_t to;
        std::uint64_t fromSeq;
        EventQueue::Callback cb;
    };

    /**
     * Cache-line-aligned shard: serial core + stats + outbox, all
     * owned exclusively by the worker running the shard's window.
     */
    struct alignas(64) Shard
    {
        EventQueue queue;
        StatSet stats;
        std::vector<Mail> outbox;
        std::uint64_t postSeq = 0;
    };

    void deliverMail();
    void executeWindow(Tick end);
    void processWork(Tick end);
    void checkOut();
    void workerLoop();

    Options _opts;
    int _workers = 1;
    std::vector<std::unique_ptr<Shard>> _shards;

    std::atomic<Tick> _windowEnd{0};
    bool _inWindow = false;
    std::uint64_t _windows = 0;
    std::uint64_t _posted = 0;

    /** @{ @name Worker-pool handshake */
    std::vector<std::thread> _threads;
    std::mutex _mutex;
    std::condition_variable _cvWork;
    std::condition_variable _cvDone;
    std::uint64_t _epoch = 0;       ///< Bumped per published window.
    bool _shutdown = false;
    std::vector<int> _workList;     ///< Shards active this window.
    std::atomic<std::size_t> _nextWork{0};
    std::size_t _remaining = 0;     ///< Participants not checked out.
    Tick _workEnd = 0;              ///< Window end for the pool.
    std::exception_ptr _failure;    ///< First window failure, if any.
    /** @} */
};

} // namespace proact

#endif // PROACT_SIM_SHARDED_ENGINE_HH
