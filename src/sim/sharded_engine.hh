/**
 * @file
 * Conservative parallel discrete-event engine (PDES).
 *
 * The serial EventQueue caps simulation throughput on large
 * topologies: every CTA completion and chunk delivery on a 256-GPU
 * hierarchical fabric funnels through one heap. ShardedEventEngine
 * shards the event space — one serial EventQueue core per GPU (or per
 * chassis plane) — and executes shards concurrently on a worker pool
 * under a conservative lookahead window:
 *
 *   window = [start, start + lookahead)
 *
 * where @c start is the globally earliest pending event and
 * @c lookahead is the minimum cross-shard latency of the model
 * (typically the minimum link latency). Within a window each shard
 * dispatches its own events in (tick, priority, seq) order; an event
 * that targets *another* shard is not scheduled directly but posted
 * to the source shard's outbox, and all outboxes are merged at the
 * window barrier in a deterministic order:
 *
 *   (when, priority, stream, stream post-sequence)
 *
 * where the stream defaults to the posting shard (post()) or is a
 * caller-chosen id (postStream()) — e.g. the source GPU — so the
 * merge order survives re-binding the same model to a different
 * shard count. Because cross-shard effects always land at or after
 * the window end (the conservative contract, enforced at post time),
 * the execution and the merge are independent of worker
 * interleaving: running with 1 worker or N workers produces
 * bit-identical event orders, shard clocks and statistics. That
 * property is the determinism gate the `ctest -L pdes` battery
 * checks.
 *
 * Besides the shards the engine owns a serial *global* control queue
 * for machinery that is not bound to any one shard (fault episode
 * boundaries, watchdog heartbeats, health probes). Global events run
 * between windows, whenever their tick is at or before the earliest
 * shard event; events falling inside a window quantize to the next
 * barrier — deterministically, since the window sequence depends
 * only on the global event set.
 *
 * Hot shared structures are per-shard by construction — each shard
 * owns its EventQueue, its StatSet (merged on read), and whatever
 * model state (channels, flying-request maps) the model binds to it —
 * so the parallel path takes no locks outside the window barrier.
 *
 * The model contract:
 *  - Shard-local state is touched only by callbacks running on that
 *    shard's queue (or serially between windows).
 *  - Cross-shard interaction goes through post()/postStream() with a
 *    delay of at least the engine lookahead.
 */

#ifndef PROACT_SIM_SHARDED_ENGINE_HH
#define PROACT_SIM_SHARDED_ENGINE_HH

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace proact {

/**
 * Worker count requested by PROACT_SIM_SHARDS (0/unset/1 =
 * sequential, clamped to [0, 64]). The knob gates every parallel path
 * in the tree — sharded event execution here, parallel profiler
 * sweeps above, sharded paradigm executions in Session product runs —
 * and defaults to off so plain runs stay serial.
 */
int envSimShards();

/** Sharded conservative-lookahead event engine. */
class ShardedEventEngine
{
  public:
    /** postStream() target meaning "the global control queue". */
    static constexpr int GlobalTarget = -1;

    struct Options
    {
        /** Shard count (>= 1); one serial event core per shard. */
        int numShards = 1;

        /**
         * Conservative window width; must not exceed the model's
         * minimum cross-shard delay. 0 degenerates to one tick per
         * window (always correct, maximum barrier overhead).
         */
        Tick lookahead = ticksPerMicrosecond;

        /**
         * Worker threads executing shards within a window. 0 = use
         * min(numShards, hardware_concurrency); 1 = sequential (the
         * determinism reference).
         */
        int workers = 1;
    };

    explicit ShardedEventEngine(Options options);
    ShardedEventEngine(const ShardedEventEngine &) = delete;
    ShardedEventEngine &operator=(const ShardedEventEngine &) = delete;
    ~ShardedEventEngine();

    int numShards() const { return static_cast<int>(_shards.size()); }
    Tick lookahead() const { return _opts.lookahead; }
    int workers() const { return _workers; }

    /** Serial event core of shard @p s; schedule shard-local events
     * directly on it (model setup and intra-shard traffic). */
    EventQueue &shard(int s) { return _shards[s]->queue; }
    const EventQueue &shard(int s) const { return _shards[s]->queue; }

    /**
     * Serial control queue for machinery not bound to any shard
     * (fault boundaries, heartbeats, probes). Its events run between
     * windows; events landing inside a window quantize to the next
     * barrier.
     */
    EventQueue &global() { return _global; }
    const EventQueue &global() const { return _global; }

    /** Contention-free per-shard statistics. */
    StatSet &stats(int s) { return _shards[s]->stats; }

    /** Merge-on-read view over every shard's StatSet. */
    StatSet mergedStats() const;

    /**
     * Schedule @p cb on shard @p to at absolute tick @p when from
     * shard @p from. Inside a running window @p when must be >= the
     * window end (the conservative contract) or a PanicError-style
     * logic_error naming the offending edge is thrown; at the barrier
     * all posts are merged deterministically by
     * (when, priority, from, fromSeq).
     */
    void post(int from, int to, Tick when, EventQueue::Callback cb,
              int priority = 0);

    /**
     * Number of independent post streams for postStream(). A stream
     * is a merge-order key that survives re-binding the model to a
     * different shard count (e.g. one stream per source GPU). Each
     * stream must have a single writer: the shard its owner is bound
     * to (or serial code between windows).
     */
    void setStreamCount(int streams);

    /**
     * Cross-shard post keyed by @p stream instead of the posting
     * shard: mail merges by (when, priority, stream, stream seq), so
     * two runs that bind the same streams to different shard counts
     * deliver identical orders. @p to may be GlobalTarget to land on
     * the global control queue. The posting shard is taken from the
     * calling thread's window context (serial context stages into a
     * dedicated outbox). The same conservative contract as post()
     * applies.
     */
    void postStream(int stream, int to, Tick when,
                    EventQueue::Callback cb, int priority = 0);

    /**
     * Register a hook run serially at every window barrier (after
     * the window's shards finish, before the next window is chosen).
     * Used to drain deferred cross-shard work that must run in a
     * deterministic serial order — e.g. fabric delivery-observer
     * dispatch.
     */
    void addBarrierHook(std::function<void()> hook);

    /** Run windows until every shard drains and no mail remains. */
    void run();

    /**
     * Run windows while @p pred holds. The predicate is evaluated
     * serially at each barrier (and before the first window), so the
     * stop is window-quantized — the sharded analogue of the serial
     * "drain until accounted" loop.
     */
    void runWhile(const std::function<bool()> &pred);

    /**
     * Run every event with tick <= @p limit (windows are clamped at
     * the limit), then stop. Events beyond the limit stay queued —
     * the sharded analogue of EventQueue::runUntil's bounded drain.
     */
    void runUntil(Tick limit);

    /** End (exclusive) of the window currently executing; 0 when no
     * window is in flight. */
    Tick windowEnd() const
    {
        return _windowEnd.load(std::memory_order_relaxed);
    }

    /** Total events dispatched across all shards and the global
     * control queue. */
    std::uint64_t dispatchedEvents() const;

    /** Cross-shard messages delivered at barriers so far. */
    std::uint64_t postedEvents() const { return _posted; }

    /** Lookahead windows executed so far. */
    std::uint64_t windows() const { return _windows; }

    /** Latest shard clock (the engine's notion of "now" between
     * windows; individual shard clocks may trail it). */
    Tick maxShardTick() const;

    /** Whether any shard still holds live events or undelivered
     * mail (excludes the global queue — self-re-arming control
     * machinery uses this as its liveness probe). */
    bool shardEventsPending() const;

    /**
     * Shard whose window the calling thread is currently executing,
     * or -1 in serial context (barriers, global events, setup).
     * Models use it to pick per-shard statistic sinks and to read
     * the executing queue's clock without holding a queue reference.
     */
    static int currentShard();

    /** Queue the calling thread is currently dispatching from, or
     * nullptr in serial context. */
    static EventQueue *currentQueue();

  private:
    /** One cross-shard message awaiting its window barrier. */
    struct Mail
    {
        Tick when;
        std::int32_t priority;
        std::int32_t stream; ///< Merge-order stream (see postStream).
        std::int32_t to;     ///< Target shard, or GlobalTarget.
        std::uint64_t seq;   ///< Per-stream post sequence.
        EventQueue::Callback cb;
    };

    /**
     * Cache-line-aligned shard: serial core + stats + outbox, all
     * owned exclusively by the worker running the shard's window.
     */
    struct alignas(64) Shard
    {
        EventQueue queue;
        StatSet stats;
        std::vector<Mail> outbox;
        std::uint64_t postSeq = 0;
    };

    void stageMail(int outbox_shard, Mail mail);
    void enforceContract(int from, int to, Tick when) const;
    void deliverMail();
    void executeWindow(Tick end);
    void processWork(Tick end);
    void checkOut();
    void workerLoop();
    void runCore(Tick limit, const std::function<bool()> *pred);

    Options _opts;
    int _workers = 1;
    std::vector<std::unique_ptr<Shard>> _shards;
    EventQueue _global;
    std::vector<Mail> _serialOutbox; ///< Posts from serial context.
    std::vector<std::uint64_t> _streamSeq;
    std::vector<std::function<void()>> _barrierHooks;

    std::atomic<Tick> _windowEnd{0};
    bool _inWindow = false;
    std::uint64_t _windows = 0;
    std::uint64_t _posted = 0;

    /** @{ @name Worker-pool handshake */
    std::vector<std::thread> _threads;
    std::mutex _mutex;
    std::condition_variable _cvWork;
    std::condition_variable _cvDone;
    std::uint64_t _epoch = 0;       ///< Bumped per published window.
    bool _shutdown = false;
    std::vector<int> _workList;     ///< Shards active this window.
    std::atomic<std::size_t> _nextWork{0};
    std::size_t _remaining = 0;     ///< Participants not checked out.
    Tick _workEnd = 0;              ///< Window end for the pool.
    std::exception_ptr _failure;    ///< First window failure, if any.
    /** @} */
};

} // namespace proact

#endif // PROACT_SIM_SHARDED_ENGINE_HH
