#include "sim/sharded_engine.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace proact {

namespace {

/** Window context of the calling thread (set while dispatching a
 * shard's window; -1/nullptr in serial context). */
thread_local int tl_shard = -1;
thread_local EventQueue *tl_queue = nullptr;

struct ShardContext
{
    ShardContext(int shard, EventQueue *queue)
    {
        tl_shard = shard;
        tl_queue = queue;
    }

    ~ShardContext()
    {
        tl_shard = -1;
        tl_queue = nullptr;
    }
};

} // namespace

int
envSimShards()
{
    const char *env = std::getenv("PROACT_SIM_SHARDS");
    if (!env || !*env)
        return 0;
    const long v = std::strtol(env, nullptr, 10);
    if (v <= 1)
        return 0;
    return static_cast<int>(std::min<long>(v, 64));
}

int
ShardedEventEngine::currentShard()
{
    return tl_shard;
}

EventQueue *
ShardedEventEngine::currentQueue()
{
    return tl_queue;
}

ShardedEventEngine::ShardedEventEngine(Options options)
    : _opts(options)
{
    if (options.numShards < 1)
        throw std::invalid_argument(
            "ShardedEventEngine: need at least one shard");

    _shards.reserve(static_cast<std::size_t>(options.numShards));
    for (int s = 0; s < options.numShards; ++s)
        _shards.push_back(std::make_unique<Shard>());

    int workers = options.workers;
    if (workers <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        workers = static_cast<int>(hw == 0 ? 1 : hw);
    }
    _workers = std::min(workers, options.numShards);

    // The pool excludes the main thread, which always participates in
    // window execution; _workers == 1 therefore spawns no threads and
    // is the bit-identical sequential reference.
    for (int i = 1; i < _workers; ++i)
        _threads.emplace_back([this] { workerLoop(); });
}

ShardedEventEngine::~ShardedEventEngine()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _shutdown = true;
    }
    _cvWork.notify_all();
    for (std::thread &t : _threads)
        t.join();
}

StatSet
ShardedEventEngine::mergedStats() const
{
    StatSet merged;
    for (const auto &shard : _shards)
        merged.merge(shard->stats);
    return merged;
}

std::uint64_t
ShardedEventEngine::dispatchedEvents() const
{
    std::uint64_t total = _global.dispatchedEvents();
    for (const auto &shard : _shards)
        total += shard->queue.dispatchedEvents();
    return total;
}

Tick
ShardedEventEngine::maxShardTick() const
{
    Tick latest = 0;
    for (const auto &shard : _shards)
        latest = std::max(latest, shard->queue.curTick());
    return latest;
}

bool
ShardedEventEngine::shardEventsPending() const
{
    if (!_serialOutbox.empty())
        return true;
    for (const auto &shard : _shards) {
        if (!shard->queue.empty() || !shard->outbox.empty())
            return true;
    }
    return false;
}

void
ShardedEventEngine::setStreamCount(int streams)
{
    if (streams < 0)
        throw std::invalid_argument(
            "ShardedEventEngine: negative stream count");
    _streamSeq.assign(static_cast<std::size_t>(streams), 0);
}

void
ShardedEventEngine::addBarrierHook(std::function<void()> hook)
{
    _barrierHooks.push_back(std::move(hook));
}

void
ShardedEventEngine::enforceContract(int from, int to, Tick when) const
{
    if (!_inWindow)
        return;
    const Tick end = _windowEnd.load(std::memory_order_relaxed);
    if (when >= end)
        return;
    // The model broke the conservative contract: a cross-shard
    // effect inside the executing window could race a shard that
    // already passed @p when. Name the offending edge — the fix is
    // lowering the lookahead or raising the model's minimum
    // cross-shard delay on exactly this path.
    std::ostringstream oss;
    oss << "ShardedEventEngine: cross-shard post inside the "
           "lookahead window: from shard "
        << from << " to shard " << to << " at when=" << when
        << " < window end=" << end;
    throw std::logic_error(oss.str());
}

void
ShardedEventEngine::stageMail(int outbox_shard, Mail mail)
{
    if (outbox_shard >= 0)
        _shards[outbox_shard]->outbox.push_back(std::move(mail));
    else
        _serialOutbox.push_back(std::move(mail));
}

void
ShardedEventEngine::post(int from, int to, Tick when,
                         EventQueue::Callback cb, int priority)
{
    if (from < 0 || from >= numShards() || to < 0 || to >= numShards())
        throw std::out_of_range("ShardedEventEngine: bad shard index");

    enforceContract(from, to, when);

    Shard &src = *_shards[from];
    src.outbox.push_back(Mail{when, static_cast<std::int32_t>(priority),
                              static_cast<std::int32_t>(from),
                              static_cast<std::int32_t>(to),
                              src.postSeq++, std::move(cb)});
}

void
ShardedEventEngine::postStream(int stream, int to, Tick when,
                               EventQueue::Callback cb, int priority)
{
    if (stream < 0
        || stream >= static_cast<int>(_streamSeq.size()))
        throw std::out_of_range(
            "ShardedEventEngine: bad post stream (setStreamCount)");
    if (to != GlobalTarget && (to < 0 || to >= numShards()))
        throw std::out_of_range("ShardedEventEngine: bad shard index");

    enforceContract(tl_shard, to, when);

    // Streams occupy key space above the shard ids so models mixing
    // post() and postStream() still merge in one total order.
    Mail mail{when, static_cast<std::int32_t>(priority),
              static_cast<std::int32_t>(numShards() + stream),
              static_cast<std::int32_t>(to),
              _streamSeq[static_cast<std::size_t>(stream)]++,
              std::move(cb)};
    stageMail(tl_shard, std::move(mail));
}

void
ShardedEventEngine::deliverMail()
{
    // Gather, then order by (when, priority, stream, seq): a total
    // order independent of which worker ran which shard — and, for
    // stream-keyed posts, independent of the shard count — so target
    // queues assign local sequence numbers identically no matter the
    // interleaving or binding.
    std::vector<Mail> mail;
    for (const auto &shard : _shards) {
        for (Mail &m : shard->outbox)
            mail.push_back(std::move(m));
        shard->outbox.clear();
    }
    for (Mail &m : _serialOutbox)
        mail.push_back(std::move(m));
    _serialOutbox.clear();
    if (mail.empty())
        return;

    std::sort(mail.begin(), mail.end(),
              [](const Mail &a, const Mail &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.priority != b.priority)
                      return a.priority < b.priority;
                  if (a.stream != b.stream)
                      return a.stream < b.stream;
                  return a.seq < b.seq;
              });

    for (Mail &m : mail) {
        EventQueue &target = m.to == GlobalTarget
            ? _global
            : _shards[m.to]->queue;
        target.schedule(m.when, std::move(m.cb), m.priority);
        ++_posted;
    }
}

void
ShardedEventEngine::processWork(Tick end)
{
    for (;;) {
        const std::size_t i =
            _nextWork.fetch_add(1, std::memory_order_relaxed);
        if (i >= _workList.size())
            break;
        const int s = _workList[i];
        ShardContext context(s, &_shards[s]->queue);
        try {
            _shards[s]->queue.runUntilBefore(end);
        } catch (...) {
            // The first exception resurfaces from run() after the
            // window; meanwhile keep draining claims so the window
            // still reaches its barrier.
            std::lock_guard<std::mutex> lock(_mutex);
            if (!_failure)
                _failure = std::current_exception();
        }
    }
}

void
ShardedEventEngine::checkOut()
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (--_remaining == 0)
        _cvDone.notify_all();
}

void
ShardedEventEngine::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        Tick end;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _cvWork.wait(lock, [&] {
                return _shutdown || _epoch != seen;
            });
            if (_shutdown)
                return;
            seen = _epoch;
            end = _workEnd;
        }
        processWork(end);
        checkOut();
    }
}

void
ShardedEventEngine::executeWindow(Tick end)
{
    // Single worker: run the active shards in index order on this
    // thread. This is the sequential reference the determinism
    // battery compares the pool against.
    if (_workers <= 1 || _workList.size() <= 1) {
        for (const int s : _workList) {
            ShardContext context(s, &_shards[s]->queue);
            _shards[s]->queue.runUntilBefore(end);
        }
        return;
    }

    // The barrier counts *participants*, not claimed work items:
    // every pool thread (plus this one) checks out once per window,
    // so no thread can still be inside processWork — reading
    // _workList or claiming from a reset _nextWork — when run()
    // moves on to mutate the window state.
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _nextWork.store(0, std::memory_order_relaxed);
        _remaining = static_cast<std::size_t>(_workers);
        _workEnd = end;
        ++_epoch;
    }
    _cvWork.notify_all();

    processWork(end); // Main thread pulls work alongside the pool.
    checkOut();

    {
        std::unique_lock<std::mutex> lock(_mutex);
        _cvDone.wait(lock, [&] { return _remaining == 0; });
    }
    if (_failure) {
        // A window died mid-flight: shard state is no longer
        // consistent, so surface the failure instead of continuing.
        std::exception_ptr failure = _failure;
        _failure = nullptr;
        std::rethrow_exception(failure);
    }
}

void
ShardedEventEngine::run()
{
    runCore(maxTick, nullptr);
}

void
ShardedEventEngine::runWhile(const std::function<bool()> &pred)
{
    runCore(maxTick, &pred);
}

void
ShardedEventEngine::runUntil(Tick limit)
{
    runCore(limit, nullptr);
}

void
ShardedEventEngine::runCore(Tick limit,
                            const std::function<bool()> *pred)
{
    for (;;) {
        if (pred && !(*pred)())
            break;

        // Posts made outside any window (model setup, previous
        // barriers, global events) land before the next window is
        // chosen.
        deliverMail();

        Tick start = maxTick;
        for (const auto &shard : _shards)
            start = std::min(start, shard->queue.nextEventTick());

        // Global control events run serially whenever they are due
        // at or before the earliest shard event; events landing
        // inside a window quantize to the next barrier. Shard clocks
        // are pulled up first so synchronous model calls from global
        // context (probe bookings, launches) read a sane "now".
        const Tick due = _global.nextEventTick();
        if (due <= start) {
            if (due == maxTick || due > limit)
                break;
            for (const auto &shard : _shards)
                shard->queue.advanceTo(due);
            while (_global.nextEventTick() == due)
                _global.runNext();
            continue;
        }
        if (start > limit)
            break;

        Tick end;
        if (_opts.lookahead == 0 || start >= maxTick - _opts.lookahead)
            end = start + 1;
        else
            end = start + _opts.lookahead;
        if (limit != maxTick)
            end = std::min(end, limit + 1);

        _workList.clear();
        for (int s = 0; s < numShards(); ++s) {
            if (_shards[s]->queue.nextEventTick() < end)
                _workList.push_back(s);
        }

        _windowEnd.store(end, std::memory_order_relaxed);
        _inWindow = true;
        executeWindow(end);
        _inWindow = false;
        _windowEnd.store(0, std::memory_order_relaxed);
        ++_windows;

        // Barrier floor: idle shard clocks (and the global clock)
        // advance to the window start so cross-object calls made
        // serially at the barrier never book into a stale past.
        for (const auto &shard : _shards)
            shard->queue.advanceTo(start);
        _global.advanceTo(start);

        for (const auto &hook : _barrierHooks)
            hook();
    }
}

} // namespace proact
