/**
 * @file
 * Small-buffer callable storage for hot-path callbacks.
 *
 * The event engine schedules millions of callbacks per simulated
 * second; std::function's type erasure heap-allocates once a capture
 * outgrows its (implementation-defined, typically 16-byte) inline
 * buffer, and the shared_ptr-heavy capture lists used throughout the
 * simulator blow past that routinely. SmallFn is a drop-in
 * replacement with a 48-byte inline buffer — enough for every capture
 * list on the transfer hot path — and a heap fallback for the rare
 * oversized closure, so scheduling an event or booking a channel
 * allocates nothing in the common case.
 *
 * Copyable (the retry and rebooking layers stash a callback and
 * re-schedule copies of it), movable, nullptr-comparable: the subset
 * of std::function the codebase actually uses.
 */

#ifndef PROACT_SIM_SMALL_FN_HH
#define PROACT_SIM_SMALL_FN_HH

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace proact {

template <typename Signature>
class SmallFn;

template <typename R, typename... Args>
class SmallFn<R(Args...)>
{
  public:
    /** Inline capture budget; larger callables fall back to the heap. */
    static constexpr std::size_t InlineBytes = 48;

    SmallFn() noexcept = default;
    SmallFn(std::nullptr_t) noexcept {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFn> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    SmallFn(F &&fn)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(_buffer)) Fn(std::forward<F>(fn));
            _ops = &inlineOps<Fn>;
        } else {
            ::new (static_cast<void *>(_buffer))
                Fn *(new Fn(std::forward<F>(fn)));
            _ops = &heapOps<Fn>;
        }
    }

    SmallFn(const SmallFn &other) { copyFrom(other); }

    SmallFn(SmallFn &&other) noexcept { moveFrom(std::move(other)); }

    SmallFn &
    operator=(const SmallFn &other)
    {
        if (this != &other) {
            reset();
            copyFrom(other);
        }
        return *this;
    }

    SmallFn &
    operator=(SmallFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(std::move(other));
        }
        return *this;
    }

    SmallFn &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFn> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    SmallFn &
    operator=(F &&fn)
    {
        SmallFn tmp(std::forward<F>(fn));
        reset();
        moveFrom(std::move(tmp));
        return *this;
    }

    ~SmallFn() { reset(); }

    explicit operator bool() const noexcept { return _ops != nullptr; }

    friend bool
    operator==(const SmallFn &f, std::nullptr_t) noexcept
    {
        return !f;
    }
    friend bool
    operator==(std::nullptr_t, const SmallFn &f) noexcept
    {
        return !f;
    }
    friend bool
    operator!=(const SmallFn &f, std::nullptr_t) noexcept
    {
        return static_cast<bool>(f);
    }
    friend bool
    operator!=(std::nullptr_t, const SmallFn &f) noexcept
    {
        return static_cast<bool>(f);
    }

    R
    operator()(Args... args) const
    {
        return _ops->call(_buffer, std::forward<Args>(args)...);
    }

  private:
    /** Type-erased operations; one static instance per callable type. */
    struct Ops
    {
        R (*call)(const void *buf, Args &&...args);
        void (*copy)(void *dst, const void *src);
        void (*move)(void *dst, void *src) noexcept;
        void (*destroy)(void *buf) noexcept;
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= InlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static constexpr Ops inlineOps = {
        // call
        [](const void *buf, Args &&...args) -> R {
            // Callables are stored non-const; operator() may mutate
            // captures (mutable lambdas, counters).
            auto *fn = static_cast<Fn *>(const_cast<void *>(buf));
            return (*fn)(std::forward<Args>(args)...);
        },
        // copy
        [](void *dst, const void *src) {
            ::new (dst) Fn(*static_cast<const Fn *>(src));
        },
        // move
        [](void *dst, void *src) noexcept {
            ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
            static_cast<Fn *>(src)->~Fn();
        },
        // destroy
        [](void *buf) noexcept { static_cast<Fn *>(buf)->~Fn(); },
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        // call
        [](const void *buf, Args &&...args) -> R {
            auto *fn = *static_cast<Fn *const *>(buf);
            return (*fn)(std::forward<Args>(args)...);
        },
        // copy
        [](void *dst, const void *src) {
            ::new (dst) Fn *(new Fn(**static_cast<Fn *const *>(src)));
        },
        // move: pointer steal — the source slot is left destroyed.
        [](void *dst, void *src) noexcept {
            auto **slot = static_cast<Fn **>(src);
            ::new (dst) Fn *(*slot);
            *slot = nullptr;
        },
        // destroy
        [](void *buf) noexcept { delete *static_cast<Fn **>(buf); },
    };

    void
    reset() noexcept
    {
        if (_ops) {
            _ops->destroy(_buffer);
            _ops = nullptr;
        }
    }

    void
    copyFrom(const SmallFn &other)
    {
        if (other._ops) {
            other._ops->copy(_buffer, other._buffer);
            _ops = other._ops;
        }
    }

    void
    moveFrom(SmallFn &&other) noexcept
    {
        if (other._ops) {
            other._ops->move(_buffer, other._buffer);
            _ops = other._ops;
            other._ops = nullptr;
        }
    }

    alignas(std::max_align_t) mutable char _buffer[InlineBytes];
    const Ops *_ops = nullptr;
};

} // namespace proact

#endif // PROACT_SIM_SMALL_FN_HH
