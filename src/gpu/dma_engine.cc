#include "gpu/dma_engine.hh"

#include "gpu/gpu.hh"
#include "interconnect/rerouter.hh"

#include <algorithm>

namespace proact {

DmaEngine::DmaEngine(EventQueue &eq, Gpu &gpu, Interconnect &fabric)
    : _eq(eq), _gpu(gpu), _fabric(fabric)
{
}

Tick
DmaEngine::copyToPeer(int dst_gpu, std::uint64_t bytes,
                      EventQueue::Callback on_complete, Tick not_before)
{
    ++_numCopies;
    _bytesCopied += bytes;

    Interconnect::Request req;
    req.src = _gpu.id();
    req.dst = dst_gpu;
    req.bytes = bytes;
    req.writeGranularity = _fabric.packetModel().maxPayloadBytes;
    req.threads = 0;
    req.onComplete = std::move(on_complete);
    req.notBefore = std::max({_eq.curTick(), not_before, _stalledUntil})
        + _gpu.spec().dmaInitLatency;
    // Copy engines retry at the hardware level; a DMA delivery is
    // never lost, only slowed (by stalls or degraded links).
    req.reliable = true;
    if (_rerouter) {
        return _rerouter->send(
            [this](const Interconnect::Request &leg) {
                return _fabric.transfer(leg);
            },
            std::move(req));
    }
    return _fabric.transfer(req);
}

} // namespace proact
