/**
 * @file
 * Hardware copy-engine model backing cudaMemcpy-style bulk transfers.
 *
 * A DMA copy pays the paper's "several microseconds" of initiation
 * (host return + engine programming, Sec. II-B) and then streams at
 * the protocol's best packet granularity, which is why bulk copies
 * saturate the fabric while exposing their full latency on the
 * critical path.
 */

#ifndef PROACT_GPU_DMA_ENGINE_HH
#define PROACT_GPU_DMA_ENGINE_HH

#include "interconnect/interconnect.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

#include <cstdint>

namespace proact {

class Gpu;
class Rerouter;

/** Per-GPU DMA engine issuing peer-to-peer bulk copies. */
class DmaEngine
{
  public:
    DmaEngine(EventQueue &eq, Gpu &gpu, Interconnect &fabric);

    /**
     * Route future copies through @p rerouter (nullptr restores
     * direct booking): a copy whose direct link is DOWN detours via a
     * relay GPU, a DEGRADED one splits across direct + relay.
     */
    void setRerouter(Rerouter *rerouter) { _rerouter = rerouter; }

    /**
     * Start a bulk copy of @p bytes from this GPU to @p dst_gpu.
     *
     * The copy may not enter the fabric before initiation completes
     * (spec.dmaInitLatency past @p not_before or now, whichever is
     * later).
     *
     * @return Absolute delivery tick at the destination.
     */
    Tick copyToPeer(int dst_gpu, std::uint64_t bytes,
                    EventQueue::Callback on_complete = nullptr,
                    Tick not_before = 0);

    /** Copies issued so far. */
    std::uint64_t numCopies() const { return _numCopies; }
    std::uint64_t bytesCopied() const { return _bytesCopied; }

    /**
     * Fault injection: the engine may not start new copies before
     * @p until (in-flight copies are unaffected). Overlapping stalls
     * keep the latest release tick.
     */
    void stall(Tick until) { _stalledUntil = std::max(_stalledUntil, until); }

    /** Tick until which new copies are held back (0 = not stalled). */
    Tick stalledUntil() const { return _stalledUntil; }

  private:
    EventQueue &_eq;
    Gpu &_gpu;
    Interconnect &_fabric;
    Rerouter *_rerouter = nullptr;
    std::uint64_t _numCopies = 0;
    std::uint64_t _bytesCopied = 0;
    Tick _stalledUntil = 0;
};

} // namespace proact

#endif // PROACT_GPU_DMA_ENGINE_HH
