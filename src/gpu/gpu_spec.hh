/**
 * @file
 * Static per-architecture GPU parameters.
 *
 * Core capacities (SMs, TFLOPS, memory bandwidth/capacity) are quoted
 * from the paper's Table I. Latency knobs the paper does not tabulate
 * (kernel/CDP launch cost, DMA initiation, atomic throughput, UM fault
 * service) are set to public-literature magnitudes; they position the
 * reproduced curves but do not create their shapes.
 */

#ifndef PROACT_GPU_GPU_SPEC_HH
#define PROACT_GPU_GPU_SPEC_HH

#include "sim/types.hh"

#include <cstdint>
#include <string>

namespace proact {

/** GPU generations used across the paper's four test systems. */
enum class GpuArch
{
    Kepler,
    Pascal,
    Volta,
};

std::string archName(GpuArch arch);

/** Full static description of one GPU model. */
struct GpuSpec
{
    std::string name; ///< Marketing name, e.g. "Tesla V100".
    GpuArch arch;

    /** @{ @name Table I capacities */
    int numSms;
    double tflops;            ///< Peak FP32 TFLOP/s.
    double memBandwidth;      ///< HBM/GDDR bytes/s.
    std::uint64_t memCapacity;///< Bytes.
    /** @} */

    /** Resident CTAs per SM under our occupancy model. */
    int ctasPerSm;

    /** @{ @name Launch and copy initiation costs */
    Tick kernelLaunchLatency; ///< Host-side kernel launch.
    Tick cdpLaunchLatency;    ///< Dynamic (device-side) kernel launch.
    Tick dmaInitLatency;      ///< cudaMemcpy host return + DMA setup.
    /** @} */

    /** @{ @name L2 atomic unit (readiness-counter tracking) */
    Tick atomicLatency;       ///< Round-trip latency of one atomicDec.
    double atomicsPerSec;     ///< Sustained L2 atomic throughput.
    /** @} */

    /** @{ @name Polling-agent resource model */
    Tick pollInterval;        ///< Bitmap scan period of the agent.
    /**
     * Fraction of memory bandwidth a saturating polling agent burns
     * in fruitless poll loops (the paper's "wasted GPU resources" on
     * Kepler).
     */
    double pollMemBwShare;
    /** @} */

    /** @{ @name Unified Memory model */
    bool umPageFaulting;      ///< HW fault+migrate (Pascal onward).
    Tick umFaultLatency;      ///< Service latency of one page fault.
    int umFaultConcurrency;   ///< Faults serviced in parallel.
    std::uint32_t umPageBytes;
    /** @} */

    /** Peak FLOP/s of one SM. */
    double
    smFlops() const
    {
        return tflops * 1.0e12 / static_cast<double>(numSms);
    }

    /** Maximum co-resident CTAs across the whole GPU. */
    int maxResidentCtas() const { return numSms * ctasPerSm; }

    /** Maximum co-resident threads (for interference shares). */
    double maxResidentThreads() const { return numSms * 2048.0; }
};

/** Tesla K40m (4x Kepler / PCIe3 system). */
GpuSpec keplerSpec();

/** Tesla P100 (4x Pascal / NVLink system). */
GpuSpec pascalSpec();

/** Tesla V100 16 GB (4x Volta / NVLink2 system). */
GpuSpec voltaSpec();

/** Tesla V100 32 GB (16x Volta / NVSwitch DGX-2 system). */
GpuSpec volta32Spec();

} // namespace proact

#endif // PROACT_GPU_GPU_SPEC_HH
