/**
 * @file
 * Kernel intermediate representation.
 *
 * Kernels are expressed as per-CTA C++ callables over host-backed
 * device buffers. Each CTA body performs the *real* computation (so
 * workloads are numerically verifiable) and returns its work footprint
 * (flops, local memory traffic), from which the GPU timing model
 * derives the CTA's duration. Remote-communication metadata (which
 * region chunks a CTA writes) is attached by the PROACT
 * instrumentation layer, mirroring the paper's compiler pass.
 */

#ifndef PROACT_GPU_KERNEL_HH
#define PROACT_GPU_KERNEL_HH

#include "sim/event_queue.hh"
#include "sim/types.hh"

#include <cstdint>
#include <functional>
#include <string>

namespace proact {

/** Work performed by one CTA, reported by its body. */
struct CtaWork
{
    /** Floating-point operations executed. */
    double flops = 0.0;

    /** Local HBM bytes moved (reads + writes). */
    std::uint64_t localBytes = 0;
};

/** Execution context handed to each CTA body. */
struct CtaContext
{
    int gpuId;   ///< GPU the CTA runs on.
    int ctaId;   ///< CTA index within the launch.
    int numCtas; ///< Total CTAs in the launch.

    /**
     * False in timing-only runs (profiler sweeps): the body must then
     * skip the math and return the same footprint it would report in
     * a functional run.
     */
    bool functional = true;
};

/** A CTA body: does the math, reports the footprint. */
using CtaFn = std::function<CtaWork(const CtaContext &)>;

/** User-visible kernel description. */
struct KernelDesc
{
    std::string name = "kernel";
    int numCtas = 1;
    int threadsPerCta = 256;
    CtaFn body;
};

/**
 * A kernel plus the runtime/instrumentation hooks attached to it.
 *
 * The instrumentation layer sets @ref instrumented and
 * @ref onCtaComplete to mirror Listing 1's compiler-inserted code:
 * the first thread of each CTA issues an atomicDec on the readiness
 * counter, and the hook fires once that atomic completes.
 */
struct KernelLaunch
{
    KernelDesc desc;

    /** Route each CTA's completion through the L2 atomic unit. */
    bool instrumented = false;

    /** Additional per-CTA cost (fences, counter-index math). */
    Tick extraCtaTicks = 0;

    /**
     * Fractional extra HBM occupancy per CTA: gpu-scope fences stall
     * the SM's memory pipeline until its stores drain, costing
     * effective memory bandwidth on every tracked CTA (the dominant
     * component of software-tracking slowdown, paper Fig. 8).
     */
    double hbmTrafficOverhead = 0.0;

    /**
     * Fires when a CTA has fully completed (after its tracking atomic,
     * if instrumented). Receives the CTA id.
     */
    std::function<void(int)> onCtaComplete;

    /** Fires when every CTA of the launch has completed. */
    EventQueue::Callback onComplete;
};

} // namespace proact

#endif // PROACT_GPU_KERNEL_HH
