/**
 * @file
 * Timing model of one GPU.
 *
 * Kernels launch onto a single in-order stream. CTAs are scheduled in
 * waves onto the SM array (spec.maxResidentCtas() concurrent CTAs).
 * A CTA's compute part runs on its SM at smFlops; its memory traffic
 * drains through the GPU-wide HBM channel (a rate-limited FIFO at
 * the spec's memory bandwidth), so memory-bound kernels take
 * totalTraffic/memBw overall while a lone straggler CTA drains at
 * full bandwidth — matching real GPU occupancy behaviour on skewed
 * work. computeFactor and the HBM rate shrink while transfer agents
 * (polling loops, CDP child kernels) occupy SM or memory resources.
 * Instrumented kernels route each CTA's completion through the L2
 * atomic unit — a rate-limited channel — so readiness-counter
 * contention naturally slows tracking-heavy workloads (paper Fig. 8).
 */

#ifndef PROACT_GPU_GPU_HH
#define PROACT_GPU_GPU_HH

#include "gpu/gpu_spec.hh"
#include "gpu/kernel.hh"
#include "sim/channel.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"
#include "sim/types.hh"

#include <cstdint>
#include <deque>
#include <memory>

namespace proact {

/**
 * One simulated GPU: in-order kernel stream, SM-wave CTA scheduler,
 * L2 atomic unit, and interference accounting for co-resident
 * transfer agents.
 */
class Gpu
{
  public:
    Gpu(EventQueue &eq, const GpuSpec &spec, int id);

    int id() const { return _id; }
    const GpuSpec &spec() const { return _spec; }
    EventQueue &eventQueue() { return _eq; }

    /**
     * Enqueue a kernel on the GPU's stream. Launches incur
     * spec.kernelLaunchLatency; kernels on one GPU never overlap.
     */
    void launch(KernelLaunch launch);

    /** Whether a kernel is running or queued. */
    bool busy() const { return _running || !_streamQueue.empty(); }

    /** Set timing-only mode for subsequently launched kernels. */
    void setFunctional(bool functional) { _functional = functional; }
    bool functional() const { return _functional; }

    /** @{ @name Transfer-agent interference
     * Agents reserve fractional shares; reservations affect CTAs that
     * start after the change (quasi-static approximation).
     */
    void reserveCompute(double share);
    void releaseCompute(double share);
    void reserveMemBw(double share);
    void releaseMemBw(double share);
    double computeFactor() const { return 1.0 - _computeReserved; }
    double memBwFactor() const { return 1.0 - _memBwReserved; }
    /** @} */

    /** L2 atomic unit; "bytes" are atomic operations. */
    Channel &atomicUnit() { return *_atomicUnit; }

    /** GPU-wide HBM interface draining all CTA memory traffic. */
    Channel &hbm() { return *_hbm; }

    /** Serial (compute-side) duration of a CTA's footprint, now. */
    Tick ctaComputeTicks(const CtaWork &work) const;

    /** Accumulated statistics (kernels, CTAs, busy time). */
    StatSet stats;

    /** Attach a span tracer (nullptr disables tracing). */
    void setTrace(Trace *trace) { _trace = trace; }

  private:
    struct ActiveKernel
    {
        KernelLaunch launch;
        int nextCta = 0;
        int completedCtas = 0;
        int residentCtas = 0;
    };

    EventQueue &_eq;
    GpuSpec _spec;
    int _id;
    bool _functional = true;

    double _computeReserved = 0.0;
    double _memBwReserved = 0.0;

    std::unique_ptr<Channel> _atomicUnit;
    std::unique_ptr<Channel> _hbm;

    std::deque<KernelLaunch> _streamQueue;
    std::unique_ptr<ActiveKernel> _running;
    Tick _kernelStart = 0;
    Trace *_trace = nullptr;

    void startNextKernel();
    void beginKernel();
    void fillWave();
    void startCta(int cta);
    void ctaComputeDone(int cta);
    void ctaFinished(int cta);
};

} // namespace proact

#endif // PROACT_GPU_GPU_HH
