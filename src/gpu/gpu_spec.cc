#include "gpu/gpu_spec.hh"

#include "sim/logging.hh"

namespace proact {

std::string
archName(GpuArch arch)
{
    switch (arch) {
      case GpuArch::Kepler:
        return "Kepler";
      case GpuArch::Pascal:
        return "Pascal";
      case GpuArch::Volta:
        return "Volta";
    }
    return "unknown";
}

GpuSpec
keplerSpec()
{
    GpuSpec s;
    s.name = "Tesla K40m";
    s.arch = GpuArch::Kepler;
    s.numSms = 15;               // Table I.
    s.tflops = 1.43;             // Table I (FP64-heavy HPC part).
    s.memBandwidth = 288.4e9;    // Table I.
    s.memCapacity = 12 * GiB;    // Table I.
    s.ctasPerSm = 8;
    s.kernelLaunchLatency = 5 * ticksPerMicrosecond;
    s.cdpLaunchLatency = 8 * ticksPerMicrosecond;
    s.dmaInitLatency = 15 * ticksPerMicrosecond;
    s.atomicLatency = 600 * ticksPerNanosecond;
    s.atomicsPerSec = 0.3e9;     // Kepler atomics are slow.
    s.pollInterval = 2 * ticksPerMicrosecond;
    s.pollMemBwShare = 0.50;     // Paper Sec. V-A: polling wastes
                                 // scarce Kepler compute/memory BW.
    s.umPageFaulting = false;    // Pre-Pascal "primitive" UM.
    s.umFaultLatency = 0;
    s.umFaultConcurrency = 1;
    s.umPageBytes = 4096;
    return s;
}

GpuSpec
pascalSpec()
{
    GpuSpec s;
    s.name = "Tesla P100";
    s.arch = GpuArch::Pascal;
    s.numSms = 56;               // Table I.
    s.tflops = 5.3;              // Table I.
    s.memBandwidth = 720.0e9;    // Table I.
    s.memCapacity = 16 * GiB;    // Table I.
    s.ctasPerSm = 8;
    s.kernelLaunchLatency = 5 * ticksPerMicrosecond;
    s.cdpLaunchLatency = 9 * ticksPerMicrosecond;
    s.dmaInitLatency = 15 * ticksPerMicrosecond;
    s.atomicLatency = 400 * ticksPerNanosecond;
    s.atomicsPerSec = 1.2e9;
    s.pollInterval = 1 * ticksPerMicrosecond;
    s.pollMemBwShare = 0.03;   // Poll loops are cheap on HBM parts.
    s.umPageFaulting = true;
    s.umFaultLatency = 30 * ticksPerMicrosecond;
    s.umFaultConcurrency = 16;
    s.umPageBytes = 64 * KiB;
    return s;
}

GpuSpec
voltaSpec()
{
    GpuSpec s;
    s.name = "Tesla V100";
    s.arch = GpuArch::Volta;
    s.numSms = 80;               // Table I.
    s.tflops = 7.8;              // Table I.
    s.memBandwidth = 920.0e9;    // Table I.
    s.memCapacity = 16 * GiB;    // Table I.
    s.ctasPerSm = 8;
    s.kernelLaunchLatency = 4 * ticksPerMicrosecond;
    // Paper Sec. V-A: dynamic-kernel initiation is highest on Volta.
    s.cdpLaunchLatency = 14 * ticksPerMicrosecond;
    s.dmaInitLatency = 15 * ticksPerMicrosecond;
    s.atomicLatency = 350 * ticksPerNanosecond;
    s.atomicsPerSec = 2.0e9;
    s.pollInterval = 1 * ticksPerMicrosecond;
    s.pollMemBwShare = 0.025;  // Poll loops are cheap on HBM parts.
    s.umPageFaulting = true;
    s.umFaultLatency = 25 * ticksPerMicrosecond;
    s.umFaultConcurrency = 16;
    s.umPageBytes = 64 * KiB;
    return s;
}

GpuSpec
volta32Spec()
{
    GpuSpec s = voltaSpec();
    s.name = "Tesla V100-32GB";
    s.memCapacity = 32 * GiB;    // Table I (DGX-2 parts).
    return s;
}

} // namespace proact
