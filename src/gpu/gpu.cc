#include "gpu/gpu.hh"

#include "sim/logging.hh"

#include <algorithm>
#include <cassert>

namespace proact {

Gpu::Gpu(EventQueue &eq, const GpuSpec &spec, int id)
    : _eq(eq), _spec(spec), _id(id)
{
    _atomicUnit = std::make_unique<Channel>(
        eq, spec.name + ".gpu" + std::to_string(id) + ".atomics",
        spec.atomicsPerSec, spec.atomicLatency);
    _hbm = std::make_unique<Channel>(
        eq, spec.name + ".gpu" + std::to_string(id) + ".hbm",
        spec.memBandwidth, 500 * ticksPerNanosecond);
}

void
Gpu::reserveCompute(double share)
{
    _computeReserved = std::min(0.95, _computeReserved + share);
}

void
Gpu::releaseCompute(double share)
{
    _computeReserved = std::max(0.0, _computeReserved - share);
}

void
Gpu::reserveMemBw(double share)
{
    _memBwReserved = std::min(0.95, _memBwReserved + share);
    _hbm->setRate(_spec.memBandwidth * memBwFactor());
}

void
Gpu::releaseMemBw(double share)
{
    _memBwReserved = std::max(0.0, _memBwReserved - share);
    _hbm->setRate(_spec.memBandwidth * memBwFactor());
}

Tick
Gpu::ctaComputeTicks(const CtaWork &work) const
{
    const double compute_rate = _spec.smFlops() * computeFactor();
    const double compute_sec =
        compute_rate > 0.0 ? work.flops / compute_rate : 0.0;
    const Tick duration = ticksFromSeconds(compute_sec);
    // Even an empty CTA costs scheduling/drain time.
    return std::max<Tick>(duration, 100 * ticksPerNanosecond);
}

void
Gpu::launch(KernelLaunch launch)
{
    if (launch.desc.numCtas <= 0)
        fatalError("Gpu::launch: kernel '", launch.desc.name,
                   "' has no CTAs");
    if (!launch.desc.body)
        fatalError("Gpu::launch: kernel '", launch.desc.name,
                   "' has no body");

    _streamQueue.push_back(std::move(launch));
    if (!_running)
        startNextKernel();
}

void
Gpu::startNextKernel()
{
    assert(!_running);
    if (_streamQueue.empty())
        return;

    _running = std::make_unique<ActiveKernel>();
    _running->launch = std::move(_streamQueue.front());
    _streamQueue.pop_front();

    _eq.scheduleIn(_spec.kernelLaunchLatency, [this] { beginKernel(); });
}

void
Gpu::beginKernel()
{
    _kernelStart = _eq.curTick();
    stats.inc("kernels");
    fillWave();
}

void
Gpu::fillWave()
{
    assert(_running);
    const int max_resident = _spec.maxResidentCtas();
    while (_running->residentCtas < max_resident &&
           _running->nextCta < _running->launch.desc.numCtas) {
        const int cta = _running->nextCta++;
        ++_running->residentCtas;
        startCta(cta);
    }
}

void
Gpu::startCta(int cta)
{
    CtaContext ctx;
    ctx.gpuId = _id;
    ctx.ctaId = cta;
    ctx.numCtas = _running->launch.desc.numCtas;
    ctx.functional = _functional;

    const CtaWork work = _running->launch.desc.body(ctx);

    const Tick compute_done = _eq.curTick() + ctaComputeTicks(work);

    stats.inc("ctas");
    stats.inc("flops", work.flops);
    stats.inc("local_bytes", static_cast<double>(work.localBytes));

    // The CTA retires once both its compute stream and its memory
    // traffic (drained by the shared HBM channel) have finished;
    // instrumentation extras (fences wait on the stores) come after.
    Tick done = compute_done;
    if (work.localBytes > 0) {
        const auto occupancy = static_cast<std::uint64_t>(
            static_cast<double>(work.localBytes)
            * (1.0 + _running->launch.hbmTrafficOverhead));
        const Tick mem_done =
            _hbm->submit(occupancy, work.localBytes);
        done = std::max(done, mem_done);
    }
    done += _running->launch.extraCtaTicks;
    _eq.schedule(done, [this, cta] { ctaComputeDone(cta); });
}

void
Gpu::ctaComputeDone(int cta)
{
    assert(_running);
    if (_running->launch.instrumented) {
        // First thread of the CTA decrements the readiness counter;
        // the CTA retires once the atomic round-trip completes, so
        // atomic-unit saturation slows tracking-heavy kernels.
        stats.inc("tracking_atomics");
        _atomicUnit->submit(1, 1, [this, cta] { ctaFinished(cta); });
    } else {
        ctaFinished(cta);
    }
}

void
Gpu::ctaFinished(int cta)
{
    assert(_running);
    --_running->residentCtas;
    ++_running->completedCtas;

    if (_running->launch.onCtaComplete)
        _running->launch.onCtaComplete(cta);

    if (_running->completedCtas == _running->launch.desc.numCtas) {
        stats.inc("kernel_busy_ticks",
                  static_cast<double>(_eq.curTick() - _kernelStart));
        if (_trace) {
            _trace->record(_kernelStart, _eq.curTick(), "kernel",
                           "gpu" + std::to_string(_id) + "."
                               + _running->launch.desc.name);
        }
        // Finish the kernel before starting the next so the stream
        // stays in order even if onComplete launches more work.
        auto on_complete = std::move(_running->launch.onComplete);
        _running.reset();
        if (on_complete)
            on_complete();
        startNextKernel();
    } else {
        fillWave();
    }
}

} // namespace proact
