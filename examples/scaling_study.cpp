/**
 * @file
 * Strong-scaling study on the 16-GPU DGX-2 (paper Fig. 10 headline).
 *
 * Scales one application from 1 to 16 GPUs under bulk cudaMemcpy
 * duplication and PROACT, printing the speedup curves that produce
 * the paper's headline result: PROACT scales near-linearly while the
 * bulk-synchronous baseline flattens under N*(N-1) per-iteration
 * copies.
 *
 * PROACT_NODES=N extends the study onto a hierarchical N-node
 * platform (multiNodePlatform; see PROACT_INTER_* knobs), adding
 * 32/64/... GPU points that cross the network tier.
 *
 * Usage: scaling_study [workload]
 */

#include "harness/session.hh"
#include "proact/config.hh"
#include "workloads/registry.hh"

#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

using namespace proact;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "Pagerank";
    const PlatformSpec dgx2 = envMultiNodePlatform();

    auto make = [&](int gpus) {
        auto workload = makeWorkload(name, envScaleShift());
        workload->setFootprintScale(16);
        workload->setup(gpus);
        return workload;
    };

    std::cout << "Strong scaling of " << name << " on " << dgx2.name
              << " (" << dgx2.fabric.name << ")\n\n";

    // Profile once at full scale; deploy everywhere.
    Session full(dgx2);
    auto profile_workload = make(dgx2.numGpus);
    Profiler::Options sweep;
    sweep.chunkSizes = {64 * KiB, 256 * KiB, 1 * MiB};
    sweep.threadCounts = {1024, 2048};
    const TransferConfig config =
        full.profile(*profile_workload, sweep).bestDecoupled().config;
    std::cout << "deployed config: " << config.toString() << "\n\n";

    const Tick single = full.singleGpuTicks(make);

    std::cout << std::left << std::setw(8) << "#GPUs" << std::right
              << std::setw(14) << "cudaMemcpy" << std::setw(14)
              << "PROACT" << std::setw(14) << "Infinite-BW" << "\n";

    std::vector<int> counts = {1, 2, 4, 8, 12, 16};
    for (int n = 32; n <= dgx2.numGpus; n *= 2)
        counts.push_back(n);

    for (const int n : counts) {
        Session session(dgx2.withGpuCount(n));
        std::cout << std::left << std::setw(8) << n;
        for (const Paradigm p :
             {Paradigm::CudaMemcpy, Paradigm::ProactDecoupled,
              Paradigm::InfiniteBw}) {
            auto workload = make(n);
            const ParadigmRun run = session.run(
                *workload, p, config, /*functional=*/false);
            std::cout << std::right << std::setw(14) << std::fixed
                      << std::setprecision(2)
                      << static_cast<double>(single)
                          / static_cast<double>(run.ticks);
        }
        std::cout << "\n";
    }
    std::cout << "\n(paper: ~11x PROACT vs ~2x cudaMemcpy at 16 "
                 "GPUs)\n";
    return 0;
}
