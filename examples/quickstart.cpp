/**
 * @file
 * Quickstart: run one workload under every communication paradigm.
 *
 * Builds the paper's 4x Volta (NVLink2) system, profiles PROACT's
 * configuration space for the chosen workload, then executes it
 * functionally (numerically verified) under cudaMemcpy duplication,
 * Unified Memory, PROACT-inline, PROACT-decoupled and the
 * infinite-bandwidth limit, printing each paradigm's speedup over a
 * single GPU.
 *
 * Usage: quickstart [workload]
 *   workload: "Jacobi" (default), "X-ray CT", "Pagerank", "SSSP",
 *             "ALS"
 */

#include "harness/session.hh"
#include "workloads/registry.hh"

#include <iomanip>
#include <iostream>
#include <string>

using namespace proact;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "Jacobi";
    const int scale_shift = envScaleShift();
    Session session(voltaPlatform());

    std::cout << "PROACT quickstart: " << name << " on "
              << session.platform().name << " ("
              << session.platform().fabric.name << ")\n\n";

    const WorkloadFactory factory = [&](int gpus) {
        auto workload = makeWorkload(name, scale_shift);
        workload->setup(gpus);
        return workload;
    };

    const auto results =
        session.compareParadigms(factory, /*functional=*/true);

    std::cout << std::left << std::setw(20) << "paradigm"
              << std::right << std::setw(12) << "time (ms)"
              << std::setw(10) << "speedup" << "\n"
              << std::string(42, '-') << "\n";
    for (const auto &run : results) {
        std::cout << std::left << std::setw(20)
                  << paradigmName(run.paradigm) << std::right
                  << std::setw(12) << std::fixed
                  << std::setprecision(3)
                  << secondsFromTicks(run.ticks) * 1e3
                  << std::setw(10) << std::setprecision(2)
                  << run.speedup;
        const std::string faults = run.faultSummary();
        if (!faults.empty())
            std::cout << "  [" << faults << "]";
        std::cout << "\n";
    }
    std::cout << "\nEvery paradigm verified numerically.\n";
    return 0;
}
