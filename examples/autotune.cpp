/**
 * @file
 * PROACT's compile-time auto-tuning in action (paper Sec. III-A).
 *
 * Sweeps the full configuration space — transfer mechanism x chunk
 * granularity x transfer thread count — for a chosen workload and
 * platform, prints the throughput surface (the paper's Figure 4
 * view) and the Table II-style winning configuration, then shows the
 * speedup the tuned configuration delivers over naive choices.
 *
 * Usage: autotune [workload] [platform]
 *   workload: "Pagerank" (default), "Jacobi", "X-ray CT", "SSSP",
 *             "ALS"
 *   platform: "volta" (default), "pascal", "kepler"
 */

#include "harness/session.hh"
#include "workloads/registry.hh"

#include <iomanip>
#include <iostream>
#include <string>

using namespace proact;

namespace {

PlatformSpec
platformByName(const std::string &name)
{
    if (name == "kepler")
        return keplerPlatform();
    if (name == "pascal")
        return pascalPlatform();
    return voltaPlatform();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string workload_name =
        argc > 1 ? argv[1] : "Pagerank";
    const PlatformSpec platform =
        platformByName(argc > 2 ? argv[2] : "volta");

    Session session(platform);
    auto workload = makeWorkload(workload_name, envScaleShift());
    workload->setFootprintScale(16);
    workload->setup(platform.numGpus);

    std::cout << "Auto-tuning " << workload_name << " on "
              << platform.name << " (" << platform.fabric.name
              << ")\n\n";

    Profiler::Options sweep;
    sweep.chunkSizes = {16 * KiB, 64 * KiB, 256 * KiB, 1 * MiB,
                        4 * MiB};
    sweep.threadCounts = {256, 1024, 4096};
    const ProfileResult prof = session.profile(*workload, sweep);

    // Throughput surface per mechanism (higher = better, normalized
    // to the best decoupled point).
    const double best =
        static_cast<double>(prof.bestDecoupled().ticks);
    for (const auto mech :
         {TransferMechanism::Cdp, TransferMechanism::Polling}) {
        std::cout << mechanismName(mech)
                  << " relative throughput (threads x chunk):\n";
        std::cout << std::left << std::setw(9) << "";
        for (const auto c : sweep.chunkSizes)
            std::cout << std::right << std::setw(8)
                      << formatBytes(c);
        std::cout << "\n";
        for (const auto t : sweep.threadCounts) {
            std::cout << std::left << std::setw(9) << t;
            for (const auto c : sweep.chunkSizes) {
                for (const auto &entry : prof.entries) {
                    if (entry.config.mechanism == mech &&
                        entry.config.chunkBytes == c &&
                        entry.config.transferThreads == t) {
                        std::cout
                            << std::right << std::setw(8)
                            << std::fixed << std::setprecision(2)
                            << best
                                / static_cast<double>(entry.ticks);
                    }
                }
            }
            std::cout << "\n";
        }
        std::cout << "\n";
    }

    std::cout << "chosen configuration: " << prof.best.toString()
              << "\n\n";

    // Tuned vs. naive configurations.
    auto ticks_for = [&](const TransferConfig &config) {
        return session
            .run(*workload, Paradigm::ProactDecoupled, config,
                 /*functional=*/false)
            .ticks;
    };
    TransferConfig naive_small = prof.bestDecoupled().config;
    naive_small.chunkBytes = 16 * KiB;
    naive_small.transferThreads = 256;
    TransferConfig naive_big = prof.bestDecoupled().config;
    naive_big.chunkBytes = 4 * MiB;
    naive_big.transferThreads = 256;

    const Tick tuned = ticks_for(prof.bestDecoupled().config);
    std::cout << "tuned config vs naive choices:\n"
              << std::fixed << std::setprecision(2)
              << "  vs 16kB/256thr:  "
              << static_cast<double>(ticks_for(naive_small))
                     / static_cast<double>(tuned)
              << "x\n"
              << "  vs 4MB/256thr:   "
              << static_cast<double>(ticks_for(naive_big))
                     / static_cast<double>(tuned)
              << "x\n";
    return 0;
}
