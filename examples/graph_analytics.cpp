/**
 * @file
 * Graph analytics on a multi-GPU system.
 *
 * Runs PageRank over a scale-free R-MAT graph on the 4x Volta
 * system, prints the most-important vertices from the verified
 * functional run, and shows why the paper's PROACT-decoupled
 * mechanism wins for irregular workloads: the interconnect traffic
 * of inline P2P stores vs. coalesced decoupled chunks.
 */

#include "harness/session.hh"
#include "workloads/pagerank.hh"

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <numeric>

using namespace proact;

int
main()
{
    Session session(voltaPlatform());

    PagerankWorkload::Params params;
    params.graph.numVertices = 1 << 16;
    params.graph.numEdges = 1 << 20;
    params.iterations = 10;

    std::cout << "Multi-GPU PageRank: "
              << params.graph.numVertices << " vertices, "
              << params.graph.numEdges << " edges on "
              << session.platform().name << "\n\n";

    // Functional PROACT-decoupled run with a profiler-chosen config.
    PagerankWorkload workload(params);
    workload.setup(session.platform().numGpus);

    Profiler::Options sweep;
    sweep.chunkSizes = {16 * KiB, 64 * KiB, 256 * KiB};
    sweep.threadCounts = {1024, 2048};
    const ProfileResult prof = session.profile(workload, sweep);
    std::cout << "profiler pick: " << prof.best.toString() << "\n";

    const ParadigmRun run =
        session.run(workload, Paradigm::ProactDecoupled,
                    prof.bestDecoupled().config,
                    /*functional=*/true);
    std::cout << "simulated time: " << std::fixed
              << std::setprecision(3)
              << secondsFromTicks(run.ticks) * 1e3
              << " ms, fabric goodput "
              << std::setprecision(1)
              << 100.0 * static_cast<double>(run.payloadBytes)
                     / static_cast<double>(run.wireBytes)
              << "%\n\n";

    // Top-ranked vertices from the verified run.
    const auto &ranks = workload.ranks();
    std::vector<std::int64_t> order(ranks.size());
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                      [&](std::int64_t a, std::int64_t b) {
                          return ranks[a] > ranks[b];
                      });
    std::cout << "top vertices by rank:\n";
    for (int i = 0; i < 5; ++i) {
        std::cout << "  v" << order[i] << "  " << std::scientific
                  << std::setprecision(3) << ranks[order[i]]
                  << "  (in-degree "
                  << workload.graph().inDegree(order[i]) << ")\n";
    }

    // Why decoupling matters for irregular apps: wire transactions.
    PagerankWorkload inline_wl(params);
    inline_wl.setup(session.platform().numGpus);
    const ParadigmRun inline_run = session.run(
        inline_wl, Paradigm::ProactInline, {}, /*functional=*/true);

    std::cout << "\nwire store transactions (irregular updates):\n"
              << "  PROACT-inline:    " << inline_run.storeTransactions
              << "\n  PROACT-decoupled: " << run.storeTransactions
              << "  ("
              << std::fixed << std::setprecision(0)
              << static_cast<double>(inline_run.storeTransactions)
                     / static_cast<double>(run.storeTransactions)
              << "x fewer; the paper reports 26x for ALS)\n";
    return 0;
}
